//! Canned topologies: the dumbbell from the paper's Figure 3, plus a seeded
//! generator for star/tree/multi-bottleneck layouts of hundreds of hosts
//! with geo-derived great-circle latencies.

use crate::link::{LinkId, LinkSpec};
use crate::sim::{NodeId, Simulator};
use crate::time::SimDuration;

/// Parameters for the dumbbell test topology (paper Figure 3): two clients
/// and two servers on either side of a bottleneck link between two routers.
/// The attack proxy is spliced into client 1's access link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumbbellSpec {
    /// Bottleneck link between the routers.
    pub bottleneck: LinkSpec,
    /// Access links (client/server to router).
    pub access: LinkSpec,
}

impl DumbbellSpec {
    /// The configuration used throughout the reproduction's evaluation:
    /// a 10 Mbit/s bottleneck with ≈20 ms base RTT and a 64-packet RED
    /// queue (about two bandwidth-delay products), with 100 Mbit/s
    /// tail-drop access links.
    pub fn evaluation_default() -> DumbbellSpec {
        DumbbellSpec {
            bottleneck: LinkSpec::new(10_000_000, SimDuration::from_millis(8), 64).with_red(),
            access: LinkSpec::new(100_000_000, SimDuration::from_millis(1), 128),
        }
    }
}

/// Handles to the nodes and links of a built dumbbell.
///
/// ```text
/// client1 ---[proxy link]--- router1 ===[bottleneck]=== router2 --- server1
/// client2 ------------------ router1                    router2 --- server2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dumbbell {
    /// Client 1: the connection the attack proxy sits in front of.
    pub client1: NodeId,
    /// Client 2: the unproxied competing connection's client.
    pub client2: NodeId,
    /// Router on the client side.
    pub router1: NodeId,
    /// Router on the server side.
    pub router2: NodeId,
    /// Server 1: serves client 1.
    pub server1: NodeId,
    /// Server 2: serves client 2.
    pub server2: NodeId,
    /// Client 1's access link — attach the attack proxy tap here.
    pub proxy_link: LinkId,
    /// The shared bottleneck link.
    pub bottleneck: LinkId,
}

impl Dumbbell {
    /// Builds the dumbbell into `sim` and returns the node/link handles.
    /// Agents are installed separately by the executor.
    pub fn build(sim: &mut Simulator, spec: DumbbellSpec) -> Dumbbell {
        let client1 = sim.add_node("client1");
        let client2 = sim.add_node("client2");
        let router1 = sim.add_node("router1");
        let router2 = sim.add_node("router2");
        let server1 = sim.add_node("server1");
        let server2 = sim.add_node("server2");

        let proxy_link = sim.add_link(client1, router1, spec.access);
        sim.add_link(client2, router1, spec.access);
        let bottleneck = sim.add_link(router1, router2, spec.bottleneck);
        sim.add_link(router2, server1, spec.access);
        sim.add_link(router2, server2, spec.access);

        Dumbbell {
            client1,
            client2,
            router1,
            router2,
            server1,
            server2,
            proxy_link,
            bottleneck,
        }
    }
}

/// Shape of a generated topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// One client-side hub and one server-side hub joined by the bottleneck;
    /// every host hangs off its hub. The dumbbell is the 4-host degenerate
    /// case of this shape.
    Star,
    /// Two-level client side: branch routers aggregate clients and feed a
    /// root router over bottleneck-class uplinks, so contention appears at
    /// two levels before the shared bottleneck.
    Tree,
    /// A parking-lot chain of routers joined by bottleneck links; clients
    /// attach along the chain and servers sit past the last hop, so flows
    /// cross a different number of bottlenecks depending on where they
    /// enter.
    MultiBottleneck,
}

impl TopologyKind {
    /// Stable lowercase label (used by the CLI and the shard wire).
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Star => "star",
            TopologyKind::Tree => "tree",
            TopologyKind::MultiBottleneck => "multi-bottleneck",
        }
    }

    /// Inverse of [`TopologyKind::label`]. Accepts the underscore spelling
    /// too so wire payloads and CLI input both round-trip.
    pub fn from_label(label: &str) -> Option<TopologyKind> {
        match label {
            "star" => Some(TopologyKind::Star),
            "tree" => Some(TopologyKind::Tree),
            "multi-bottleneck" | "multi_bottleneck" => Some(TopologyKind::MultiBottleneck),
            _ => None,
        }
    }
}

/// Parameters for the seeded topology generator.
///
/// `hosts` counts end hosts only (clients + servers); routers are added by
/// the shape. Link *capacities* come from `bottleneck`/`access`; link
/// *delays* are derived from great-circle distances between seeded host
/// positions, so the same seed always reproduces the same latency map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyGenSpec {
    /// Shape to generate.
    pub kind: TopologyKind,
    /// Number of end hosts (clients + servers). At least 4.
    pub hosts: usize,
    /// Seed for host placement (and therefore all geo latencies).
    pub seed: u64,
    /// Capacity/queue template for bottleneck-class links.
    pub bottleneck: LinkSpec,
    /// Capacity/queue template for host access links.
    pub access: LinkSpec,
}

/// Role of a node in a generated layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// End host that opens connections.
    Client,
    /// End host that accepts connections.
    Server,
    /// Interior forwarding node.
    Router,
}

impl NodeRole {
    fn label(&self) -> &'static str {
        match self {
            NodeRole::Client => "client",
            NodeRole::Server => "server",
            NodeRole::Router => "router",
        }
    }
}

/// One node of a generated layout, with its seeded geographic position.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoNode {
    /// Unique node name (e.g. `client3`, `branch1`).
    pub name: String,
    /// Role in the layout.
    pub role: NodeRole,
    /// Latitude in degrees, sampled in the populated band [-60, 72).
    pub lat_deg: f64,
    /// Longitude in degrees, in [-180, 180).
    pub lon_deg: f64,
}

/// One link of a generated layout, by node index into
/// [`TopologyLayout::nodes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopoLink {
    /// Index of endpoint `a` (for host access links, always the host).
    pub a: usize,
    /// Index of endpoint `b`.
    pub b: usize,
    /// Full link spec with the geo-derived delay already applied.
    pub spec: LinkSpec,
}

/// A fully materialized topology: nodes with positions, links with
/// geo-derived delays, and the client/server index lists. Pure data —
/// [`TopologyLayout::build`] instantiates it into a [`Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyLayout {
    /// Shape this layout was generated from.
    pub kind: TopologyKind,
    /// All nodes, in creation order (routers first, then clients, servers).
    pub nodes: Vec<TopoNode>,
    /// All links, in creation order.
    pub links: Vec<TopoLink>,
    /// Node indices of the clients; `clients[0]` is the attacked client.
    pub clients: Vec<usize>,
    /// Node indices of the servers; `servers[0]` is the attacked server.
    pub servers: Vec<usize>,
    /// Index into `links` of the attacked client's access link (the attack
    /// proxy taps here, mirroring the dumbbell's `proxy_link`).
    pub proxy_link: usize,
}

/// Handles returned by [`TopologyLayout::build`].
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// Node handles for the clients, attacked client first.
    pub clients: Vec<NodeId>,
    /// Node handles for the servers, attacked server first.
    pub servers: Vec<NodeId>,
    /// The attacked client's access link — attach the attack proxy here.
    pub proxy_link: LinkId,
    /// Whether the attacked client is endpoint `a` of `proxy_link`.
    pub proxy_client_is_a: bool,
}

/// Speed of light in fiber, ≈ 2/3 c, in kilometres per millisecond.
const FIBER_KM_PER_MS: f64 = 200.0;
/// Mean Earth radius in kilometres (haversine).
const EARTH_RADIUS_KM: f64 = 6371.0;
/// Floor on any geo-derived delay so colocated hosts still pay a hop.
const MIN_GEO_DELAY_NS: u64 = 10_000;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform sample in [0, 1) with 53 bits of precision.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn great_circle_km(a: &TopoNode, b: &TopoNode) -> f64 {
    let (lat1, lon1) = (a.lat_deg.to_radians(), a.lon_deg.to_radians());
    let (lat2, lon2) = (b.lat_deg.to_radians(), b.lon_deg.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

fn geo_delay(a: &TopoNode, b: &TopoNode) -> SimDuration {
    let nanos = (great_circle_km(a, b) / FIBER_KM_PER_MS * 1_000_000.0).round() as u64;
    SimDuration::from_nanos(nanos.max(MIN_GEO_DELAY_NS))
}

/// Seeded topology generator. Stateless: [`TopologyGen::generate`] is a pure
/// function of its spec, so the same spec always yields a byte-identical
/// [`TopologyLayout`] (node names, positions, link order, and delays).
#[derive(Debug)]
pub struct TopologyGen;

impl TopologyGen {
    /// Generates a layout, or an error string for degenerate specs.
    pub fn generate(spec: &TopologyGenSpec) -> Result<TopologyLayout, String> {
        if spec.hosts < 4 {
            return Err(format!(
                "generated topologies need at least 4 hosts (got {})",
                spec.hosts
            ));
        }
        if spec.hosts > 4096 {
            return Err(format!(
                "generated topologies are capped at 4096 hosts (got {})",
                spec.hosts
            ));
        }
        for (what, link) in [("bottleneck", &spec.bottleneck), ("access", &spec.access)] {
            if link.bandwidth_bps == 0 {
                return Err(format!("{what} link bandwidth must be positive"));
            }
            if link.queue_packets == 0 {
                return Err(format!("{what} link queue must hold at least one packet"));
            }
        }

        let servers = (spec.hosts / 8).max(1);
        let clients = spec.hosts - servers;
        let mut rng = spec.seed ^ 0x746F_706F_6C6F_6779; // "topology"
        let mut gen = LayoutBuilder {
            layout: TopologyLayout {
                kind: spec.kind,
                nodes: Vec::new(),
                links: Vec::new(),
                clients: Vec::new(),
                servers: Vec::new(),
                proxy_link: 0,
            },
            rng: &mut rng,
        };

        match spec.kind {
            TopologyKind::Star => gen.star(clients, servers, spec),
            TopologyKind::Tree => gen.tree(clients, servers, spec),
            TopologyKind::MultiBottleneck => gen.chain(clients, servers, spec),
        }
        Ok(gen.layout)
    }
}

struct LayoutBuilder<'a> {
    layout: TopologyLayout,
    rng: &'a mut u64,
}

impl LayoutBuilder<'_> {
    /// Adds a node with a freshly sampled position; sampling order is the
    /// creation order, which pins the whole latency map to the seed.
    fn node(&mut self, name: String, role: NodeRole) -> usize {
        let lat_deg = -60.0 + unit(self.rng) * 132.0;
        let lon_deg = -180.0 + unit(self.rng) * 360.0;
        self.layout.nodes.push(TopoNode {
            name,
            role,
            lat_deg,
            lon_deg,
        });
        self.layout.nodes.len() - 1
    }

    /// Adds a link whose delay is the great-circle propagation time between
    /// the endpoints' positions, keeping `template`'s capacity and queue.
    fn link(&mut self, a: usize, b: usize, template: LinkSpec) -> usize {
        let spec = LinkSpec {
            delay: geo_delay(&self.layout.nodes[a], &self.layout.nodes[b]),
            ..template
        };
        self.layout.links.push(TopoLink { a, b, spec });
        self.layout.links.len() - 1
    }

    /// Attaches `clients` client hosts to `router`; the first client added
    /// overall becomes the attacked client and its access link the proxy
    /// link. Returns nothing — indices accumulate in the layout.
    fn attach_clients(&mut self, routers: &[usize], clients: usize, access: LinkSpec) {
        for i in 0..clients {
            let router = routers[i % routers.len()];
            let idx = self.node(format!("client{i}"), NodeRole::Client);
            let link = self.link(idx, router, access);
            if self.layout.clients.is_empty() {
                self.layout.proxy_link = link;
            }
            self.layout.clients.push(idx);
        }
    }

    fn attach_servers(&mut self, routers: &[usize], servers: usize, access: LinkSpec) {
        for i in 0..servers {
            let router = routers[i % routers.len()];
            let idx = self.node(format!("server{i}"), NodeRole::Server);
            self.link(idx, router, access);
            self.layout.servers.push(idx);
        }
    }

    fn star(&mut self, clients: usize, servers: usize, spec: &TopologyGenSpec) {
        let hub_c = self.node("hub-c".into(), NodeRole::Router);
        let hub_s = self.node("hub-s".into(), NodeRole::Router);
        self.link(hub_c, hub_s, spec.bottleneck);
        self.attach_clients(&[hub_c], clients, spec.access);
        self.attach_servers(&[hub_s], servers, spec.access);
    }

    fn tree(&mut self, clients: usize, servers: usize, spec: &TopologyGenSpec) {
        let root_c = self.node("root-c".into(), NodeRole::Router);
        let root_s = self.node("root-s".into(), NodeRole::Router);
        self.link(root_c, root_s, spec.bottleneck);
        // Branch fan-out ~ sqrt(clients) keeps the tree two levels deep
        // with balanced aggregation at each branch.
        let branches = ((clients as f64).sqrt().ceil() as usize).max(1);
        let mut branch_idx = Vec::with_capacity(branches);
        for b in 0..branches {
            let idx = self.node(format!("branch{b}"), NodeRole::Router);
            self.link(idx, root_c, spec.bottleneck);
            branch_idx.push(idx);
        }
        self.attach_clients(&branch_idx, clients, spec.access);
        self.attach_servers(&[root_s], servers, spec.access);
    }

    fn chain(&mut self, clients: usize, servers: usize, spec: &TopologyGenSpec) {
        // Parking lot: r0 = r1 = r2 = r3, clients spread over r0..r2,
        // servers past the final bottleneck on r3.
        const ROUTERS: usize = 4;
        let mut routers = Vec::with_capacity(ROUTERS);
        for r in 0..ROUTERS {
            routers.push(self.node(format!("router{r}"), NodeRole::Router));
        }
        for w in routers.windows(2) {
            self.link(w[0], w[1], spec.bottleneck);
        }
        self.attach_clients(&routers[..ROUTERS - 1], clients, spec.access);
        self.attach_servers(&[routers[ROUTERS - 1]], servers, spec.access);
    }
}

impl TopologyLayout {
    /// FNV-1a digest over the complete layout — node names, roles, position
    /// bits, link endpoints, and full link specs (including the geo-derived
    /// delays). Two layouts with equal digests are byte-identical.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        };
        eat(self.kind.label().as_bytes());
        for n in &self.nodes {
            eat(n.name.as_bytes());
            eat(n.role.label().as_bytes());
            eat(&n.lat_deg.to_bits().to_le_bytes());
            eat(&n.lon_deg.to_bits().to_le_bytes());
        }
        for l in &self.links {
            eat(&(l.a as u64).to_le_bytes());
            eat(&(l.b as u64).to_le_bytes());
            eat(&l.spec.bandwidth_bps.to_le_bytes());
            eat(&l.spec.delay.as_nanos().to_le_bytes());
            eat(&(l.spec.queue_packets as u64).to_le_bytes());
            eat(format!("{:?}|{}", l.spec.aqm, l.spec.impair).as_bytes());
        }
        for &c in &self.clients {
            eat(&(c as u64).to_le_bytes());
        }
        for &s in &self.servers {
            eat(&(s as u64).to_le_bytes());
        }
        eat(&(self.proxy_link as u64).to_le_bytes());
        h
    }

    /// Total end-to-end propagation delay of the attacked client's path is
    /// dominated by these links; exposed for tests and docs.
    pub fn bottleneck_links(&self) -> impl Iterator<Item = &TopoLink> {
        self.links.iter().filter(move |l| {
            self.nodes[l.a].role == NodeRole::Router && self.nodes[l.b].role == NodeRole::Router
        })
    }

    /// Instantiates the layout into `sim` (nodes then links, in layout
    /// order) and returns the handles the executor needs. Host access links
    /// are always added host-first, so the attacked client is endpoint `a`
    /// of the proxy link.
    pub fn build(&self, sim: &mut Simulator) -> BuiltTopology {
        let ids: Vec<NodeId> = self.nodes.iter().map(|n| sim.add_node(&n.name)).collect();
        let mut proxy_link = None;
        for (i, l) in self.links.iter().enumerate() {
            let id = sim.add_link(ids[l.a], ids[l.b], l.spec);
            if i == self.proxy_link {
                proxy_link = Some(id);
            }
        }
        BuiltTopology {
            clients: self.clients.iter().map(|&i| ids[i]).collect(),
            servers: self.servers.iter().map(|&i| ids[i]).collect(),
            proxy_link: proxy_link.expect("layout always has a proxy link"),
            proxy_client_is_a: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, Ctx};
    use crate::packet::{Addr, Packet, Protocol};
    use crate::time::SimTime;

    struct Sender {
        to: NodeId,
        sent: u32,
    }
    impl Agent for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.sent {
                let pkt = Packet::new(
                    ctx.addr(1),
                    Addr::new(self.to, 80),
                    Protocol::Other(9),
                    Vec::new(),
                    1_000,
                );
                ctx.send(pkt);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
    }

    struct Counter {
        got: u32,
    }
    impl Agent for Counter {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {
            self.got += 1;
        }
    }

    #[test]
    fn dumbbell_routes_both_flows() {
        let mut sim = Simulator::new(3);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        sim.set_agent(
            d.client1,
            Sender {
                to: d.server1,
                sent: 4,
            },
        );
        sim.set_agent(
            d.client2,
            Sender {
                to: d.server2,
                sent: 6,
            },
        );
        sim.set_agent(d.server1, Counter { got: 0 });
        sim.set_agent(d.server2, Counter { got: 0 });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent::<Counter>(d.server1).unwrap().got, 4);
        assert_eq!(sim.agent::<Counter>(d.server2).unwrap().got, 6);
        let (ab, _) = sim.link_stats(d.bottleneck);
        assert_eq!(ab.transmitted, 10, "both flows cross the bottleneck");
    }

    #[test]
    fn evaluation_default_has_sane_rtt() {
        let spec = DumbbellSpec::evaluation_default();
        // Base RTT across the dumbbell: 2 * (1 + 8 + 1) ms = 20 ms.
        let one_way = spec.access.delay.as_nanos() * 2 + spec.bottleneck.delay.as_nanos();
        assert_eq!(one_way * 2, SimDuration::from_millis(20).as_nanos());
    }

    fn gen_spec(kind: TopologyKind, hosts: usize, seed: u64) -> TopologyGenSpec {
        let d = DumbbellSpec::evaluation_default();
        TopologyGenSpec {
            kind,
            hosts,
            seed,
            bottleneck: d.bottleneck,
            access: d.access,
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        for kind in [
            TopologyKind::Star,
            TopologyKind::Tree,
            TopologyKind::MultiBottleneck,
        ] {
            let a = TopologyGen::generate(&gen_spec(kind, 256, 7)).unwrap();
            let b = TopologyGen::generate(&gen_spec(kind, 256, 7)).unwrap();
            assert_eq!(a, b, "{kind:?}: same seed must give identical layouts");
            assert_eq!(a.digest(), b.digest());
            let c = TopologyGen::generate(&gen_spec(kind, 256, 8)).unwrap();
            assert_ne!(
                a.digest(),
                c.digest(),
                "{kind:?}: a different seed must move the latency map"
            );
        }
    }

    #[test]
    fn generator_rejects_degenerate_specs() {
        assert!(TopologyGen::generate(&gen_spec(TopologyKind::Star, 3, 7)).is_err());
        assert!(TopologyGen::generate(&gen_spec(TopologyKind::Star, 5000, 7)).is_err());
        let mut zero_bw = gen_spec(TopologyKind::Star, 16, 7);
        zero_bw.bottleneck.bandwidth_bps = 0;
        assert!(TopologyGen::generate(&zero_bw).is_err());
        let mut zero_q = gen_spec(TopologyKind::Tree, 16, 7);
        zero_q.access.queue_packets = 0;
        assert!(TopologyGen::generate(&zero_q).is_err());
    }

    #[test]
    fn generated_layouts_have_sane_shape() {
        for kind in [
            TopologyKind::Star,
            TopologyKind::Tree,
            TopologyKind::MultiBottleneck,
        ] {
            let layout = TopologyGen::generate(&gen_spec(kind, 256, 7)).unwrap();
            assert_eq!(layout.clients.len() + layout.servers.len(), 256);
            assert!(!layout.servers.is_empty());
            assert!(layout.clients.len() > layout.servers.len());
            // The proxy link's `a` endpoint is the attacked client.
            let proxy = layout.links[layout.proxy_link];
            assert_eq!(proxy.a, layout.clients[0]);
            assert_eq!(layout.nodes[proxy.a].role, NodeRole::Client);
            // All geo delays respect the floor and stay on-planet
            // (half circumference ≈ 20015 km ≈ 100 ms at 2/3 c).
            for l in &layout.links {
                assert!(l.spec.delay.as_nanos() >= MIN_GEO_DELAY_NS);
                assert!(l.spec.delay.as_nanos() <= 101_000_000);
            }
            assert!(layout.bottleneck_links().count() >= 1);
        }
    }

    #[test]
    fn generated_topology_routes_end_to_end() {
        let mut sim = Simulator::new(11);
        let layout = TopologyGen::generate(&gen_spec(TopologyKind::Tree, 32, 11)).unwrap();
        let built = layout.build(&mut sim);
        let client = built.clients[0];
        let server = built.servers[0];
        sim.set_agent(
            client,
            Sender {
                to: server,
                sent: 5,
            },
        );
        sim.set_agent(server, Counter { got: 0 });
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(
            sim.agent::<Counter>(server).unwrap().got,
            5,
            "packets must route across the generated tree"
        );
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in [
            TopologyKind::Star,
            TopologyKind::Tree,
            TopologyKind::MultiBottleneck,
        ] {
            assert_eq!(TopologyKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(TopologyKind::from_label("ring"), None);
    }
}
