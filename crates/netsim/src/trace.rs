//! Packet trace capture — the simulation's `tcpdump`.
//!
//! The paper's authors "manually inspect the packet captures" to explain
//! flagged strategies (notably the hitseqwindow false positives, §VI-A).
//! Enabling capture on a [`Simulator`](crate::Simulator) records every
//! packet accepted onto any link, in order, with its timing and addressing
//! — enough to reconstruct what a strategy actually did to the wire.

use crate::link::LinkId;
use crate::packet::{Addr, Packet, Protocol};
use crate::sim::NodeId;
use crate::time::SimTime;

/// One captured packet: when it was accepted onto which link, travelling
/// between which nodes, with its transport addressing and header bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Capture time (when the packet entered the link's queue).
    pub time: SimTime,
    /// The link it traversed.
    pub link: LinkId,
    /// Hop source node.
    pub hop_from: NodeId,
    /// Hop destination node.
    pub hop_to: NodeId,
    /// End-to-end source address.
    pub src: Addr,
    /// End-to-end destination address.
    pub dst: Addr,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Raw transport header bytes (decode with the protocol's
    /// `snake-packet` spec).
    pub header: Vec<u8>,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// The packet's simulator-assigned id (stable across hops).
    pub packet_id: u64,
}

impl TraceRecord {
    /// One-line summary, `tcpdump`-style.
    pub fn summary(&self) -> String {
        format!(
            "{} link{} {} > {} {} len {} (id {})",
            self.time,
            self.link.index(),
            self.src,
            self.dst,
            self.protocol,
            self.payload_len,
            self.packet_id
        )
    }
}

/// A bounded in-order capture buffer. When full, capture stops (the head
/// of a run matters most for diagnosis; unbounded captures of 60-second
/// floods would dominate memory).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    truncated: u64,
}

impl Trace {
    pub(crate) fn new(capacity: usize) -> Trace {
        Trace {
            records: Vec::new(),
            capacity,
            truncated: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        time: SimTime,
        link: LinkId,
        hop_from: NodeId,
        hop_to: NodeId,
        packet: &Packet,
    ) {
        if self.records.len() >= self.capacity {
            self.truncated += 1;
            return;
        }
        self.records.push(TraceRecord {
            time,
            link,
            hop_from,
            hop_to,
            src: packet.src,
            dst: packet.dst,
            protocol: packet.protocol,
            header: packet.header.to_vec(),
            payload_len: packet.payload_len,
            packet_id: packet.id,
        });
    }

    /// The captured records, in capture order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Packets that arrived after the buffer filled.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Renders the whole capture as one summary line per packet.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.summary());
            out.push('\n');
        }
        if self.truncated > 0 {
            out.push_str(&format!(
                "... {} more packets not captured\n",
                self.truncated
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Agent, Ctx, LinkSpec, SimDuration, Simulator};

    struct Burst {
        peer: NodeId,
        n: u32,
    }
    impl Agent for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..self.n {
                let pkt = Packet::new(
                    ctx.addr(1_000 + i as u16),
                    Addr::new(self.peer, 80),
                    Protocol::Tcp,
                    vec![0u8; 20],
                    100,
                );
                ctx.send(pkt);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
    }

    #[test]
    fn capture_records_packets_in_order() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_link(
            a,
            b,
            LinkSpec::new(8_000_000, SimDuration::from_millis(1), 32),
        );
        sim.set_agent(a, Burst { peer: b, n: 5 });
        sim.set_agent(b, Burst { peer: a, n: 0 });
        sim.enable_trace(1_000);
        sim.run_until(crate::SimTime::from_secs(1));
        let trace = sim.trace().expect("enabled");
        assert_eq!(trace.records().len(), 5);
        assert_eq!(trace.truncated(), 0);
        for w in trace.records().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        let dump = trace.dump();
        assert_eq!(dump.lines().count(), 5);
        assert!(dump.contains("tcp"));
    }

    #[test]
    fn capture_truncates_at_capacity() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_link(
            a,
            b,
            LinkSpec::new(8_000_000, SimDuration::from_millis(1), 64),
        );
        sim.set_agent(a, Burst { peer: b, n: 10 });
        sim.set_agent(b, Burst { peer: a, n: 0 });
        sim.enable_trace(4);
        sim.run_until(crate::SimTime::from_secs(1));
        let trace = sim.trace().expect("enabled");
        assert_eq!(trace.records().len(), 4);
        assert_eq!(trace.truncated(), 6);
        assert!(trace.dump().contains("6 more packets"));
    }

    #[test]
    fn disabled_by_default() {
        let sim = Simulator::new(1);
        assert!(sim.trace().is_none());
    }
}
