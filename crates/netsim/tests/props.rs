//! Property-based tests on the discrete-event simulator's invariants:
//! links never reorder, never duplicate, and conserve packets; time is
//! monotone; identical seeds replay identically.

use proptest::prelude::*;
use snake_netsim::{
    Addr, Agent, Ctx, LinkSpec, NodeId, Packet, Protocol, SimDuration, SimTime, Simulator,
};

/// Sends numbered packets at scripted times; the receiver records arrival
/// order.
struct ScriptedSender {
    peer: NodeId,
    script: Vec<(u64, u32)>, // (micros, payload_len); payload doubles as id via port
}
impl Agent for ScriptedSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, &(at, _len)) in self.script.iter().enumerate() {
            ctx.set_timer(SimDuration::from_micros(at), i as u64);
        }
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let (_, len) = self.script[tag as usize];
        let pkt = Packet::new(
            ctx.addr(tag as u16),
            Addr::new(self.peer, 7),
            Protocol::Other(1),
            Vec::new(),
            len,
        );
        ctx.send(pkt);
    }
}

struct Recorder {
    arrivals: Vec<(u16, u64)>, // (sender port = script index, time ns)
}
impl Agent for Recorder {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        self.arrivals.push((packet.src.port, ctx.now().as_nanos()));
    }
}

fn run_script(script: Vec<(u64, u32)>, queue: usize, seed: u64) -> (Vec<(u16, u64)>, u64, u64) {
    let mut sim = Simulator::new(seed);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let link = sim.add_link(
        a,
        b,
        LinkSpec::new(8_000_000, SimDuration::from_millis(1), queue),
    );
    sim.set_agent(a, ScriptedSender { peer: b, script });
    sim.set_agent(
        b,
        Recorder {
            arrivals: Vec::new(),
        },
    );
    sim.run_until(SimTime::from_secs(10));
    let (ab, _) = sim.link_stats(link);
    let arrivals = sim.agent::<Recorder>(b).unwrap().arrivals.clone();
    (arrivals, ab.transmitted, ab.dropped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FIFO links never reorder: arrivals are a subsequence of the send
    /// order (drops allowed), and arrival times are non-decreasing.
    #[test]
    fn links_preserve_order(
        sends in prop::collection::vec((0u64..200_000, 1u32..1_500), 1..60),
        queue in 1usize..16,
    ) {
        let mut script = sends;
        script.sort_by_key(|&(t, _)| t);
        // Make send instants unique so order is well-defined.
        for i in 1..script.len() {
            if script[i].0 <= script[i - 1].0 {
                script[i].0 = script[i - 1].0 + 1;
            }
        }
        let (arrivals, _, _) = run_script(script.clone(), queue, 1);
        // Arrival times monotone.
        for w in arrivals.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "time went backwards");
        }
        // Sender indices form an increasing subsequence (no reordering,
        // no duplication).
        for w in arrivals.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "link reordered or duplicated: {:?}", arrivals);
        }
    }

    /// Conservation: every sent packet is either transmitted or dropped,
    /// and every transmitted packet arrives.
    #[test]
    fn links_conserve_packets(
        sends in prop::collection::vec((0u64..100_000, 1u32..1_500), 1..60),
        queue in 1usize..16,
    ) {
        let mut script = sends;
        script.sort_by_key(|&(t, _)| t);
        let n = script.len() as u64;
        let (arrivals, transmitted, dropped) = run_script(script, queue, 1);
        prop_assert_eq!(transmitted + dropped, n);
        prop_assert_eq!(arrivals.len() as u64, transmitted);
    }

    /// Determinism: identical scripts and seeds produce identical arrival
    /// traces.
    #[test]
    fn replay_is_identical(
        sends in prop::collection::vec((0u64..100_000, 1u32..1_500), 1..40),
        seed in any::<u64>(),
    ) {
        let mut script = sends;
        script.sort_by_key(|&(t, _)| t);
        let a = run_script(script.clone(), 4, seed);
        let b = run_script(script, 4, seed);
        prop_assert_eq!(a, b);
    }
}
