//! Observability primitives for the SNAKE workspace.
//!
//! The campaign runtime grew three layers of speedups (snapshot-fork,
//! memoization, no-op halting) with no way to see where time goes. This
//! crate supplies the measurement substrate:
//!
//! - [`Observer`] — a zero-dependency trait with nestable spans (stamped
//!   with both simulated time and wall time), monotonic counters and
//!   histograms. Every hook has a no-op default so an implementation can
//!   pick the primitives it cares about, and [`NullObserver`] (the
//!   default everywhere) compiles down to a virtual call returning a
//!   constant — instrumented hot paths cost nothing measurable when
//!   nobody is listening.
//! - [`Recorder`] — a sharded, lock-cheap implementation safe to call
//!   from campaign worker threads. Each thread is pinned round-robin to
//!   one of a fixed set of mutex-guarded shards, so concurrent workers
//!   almost never contend; [`Recorder::snapshot`] merges the shards into
//!   a [`RecorderSnapshot`] for reporting.
//! - [`RunManifest`] — an ordered, named-section JSON document (via
//!   `snake-json`) describing one campaign run. `snake-core` fills in
//!   the campaign-specific sections; this crate owns the envelope.
//!
//! The trait is deliberately minimal: names are `&'static str` so
//! recording a counter is a map bump, not an allocation, and spans carry
//! no payload beyond their timestamps. Anything richer belongs in the
//! manifest assembly, off the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use snake_json::{obj, Value};

/// Opaque handle for an in-flight span, returned by
/// [`Observer::span_enter`] and consumed by [`Observer::span_exit`].
///
/// [`SpanId::NONE`] is the null handle: exiting it is a no-op, and no-op
/// observers return it from every enter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The null span handle.
    pub const NONE: SpanId = SpanId(0);

    fn encode(shard: usize, slot: usize) -> SpanId {
        SpanId(((shard as u64) << 48) | (slot as u64 + 1))
    }

    fn decode(self) -> Option<(usize, usize)> {
        if self.0 == 0 {
            None
        } else {
            Some((
                (self.0 >> 48) as usize,
                (self.0 & 0xffff_ffff_ffff) as usize - 1,
            ))
        }
    }
}

/// Sink for spans, counters and histogram samples.
///
/// All hooks default to no-ops; [`NullObserver`] implements exactly the
/// defaults. Implementations must be `Send + Sync` — campaign workers
/// call them concurrently. Callers on hot paths should gate any work
/// needed to *compute* an observation (e.g. `Instant::now`) behind
/// [`Observer::enabled`].
pub trait Observer: Send + Sync {
    /// Whether this observer records anything. `false` lets callers skip
    /// the cost of producing values nobody will look at.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a span named `name`. `sim_nanos` is the simulated-time
    /// stamp (0 when no simulation clock is meaningful); the wall-time
    /// stamp is taken by the observer itself. Spans nest: a span entered
    /// while another is open on the same thread records that span as its
    /// parent.
    fn span_enter(&self, _name: &'static str, _sim_nanos: u64) -> SpanId {
        SpanId::NONE
    }

    /// Closes a span previously returned by [`Observer::span_enter`].
    fn span_exit(&self, _id: SpanId) {}

    /// Adds `delta` to the monotonic counter `name`.
    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    /// Records one sample into the histogram `name`.
    fn record(&self, _name: &'static str, _value: u64) {}
}

/// The default observer: records nothing, returns [`SpanId::NONE`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// A shared no-op observer, the default for every config that takes one.
pub fn noop() -> Arc<dyn Observer> {
    Arc::new(NullObserver)
}

/// RAII guard that exits its span on drop. Built by [`span`].
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard<'a> {
    observer: &'a dyn Observer,
    id: SpanId,
}

impl fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard").field("id", &self.id).finish()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.observer.span_exit(self.id);
    }
}

/// Opens a span on `observer` and returns a guard that closes it when
/// dropped.
pub fn span<'a>(observer: &'a dyn Observer, name: &'static str, sim_nanos: u64) -> SpanGuard<'a> {
    SpanGuard {
        observer,
        id: observer.span_enter(name, sim_nanos),
    }
}

/// One observed histogram: count/sum/min/max plus power-of-two buckets
/// (`buckets[i]` counts samples whose bit length is `i`, saturating at
/// the last bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Log2 buckets; index = bit length of the sample, capped.
    pub buckets: [u64; 32],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 32],
        }
    }
}

impl Histogram {
    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.leading_zeros() as usize).min(31);
        self.buckets[bucket] += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// JSON summary: count, sum, min, max, mean and the non-empty
    /// buckets as `[bit_length, count]` pairs.
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| Value::Arr(vec![Value::U64(i as u64), Value::U64(*c)]))
            .collect();
        obj([
            ("count", Value::U64(self.count)),
            ("sum", Value::U64(self.sum)),
            (
                "min",
                Value::U64(if self.count == 0 { 0 } else { self.min }),
            ),
            ("max", Value::U64(self.max)),
            ("mean", Value::U64(self.mean())),
            ("log2_buckets", Value::Arr(buckets)),
        ])
    }
}

/// One recorded span, as exported by [`Recorder::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnap {
    /// Span name as passed to [`Observer::span_enter`].
    pub name: &'static str,
    /// Nesting depth at enter (0 = top level on its thread).
    pub depth: u32,
    /// Simulated-time stamp supplied at enter.
    pub sim_nanos: u64,
    /// Wall-clock offset of enter, nanoseconds since the recorder was
    /// created.
    pub wall_start_nanos: u64,
    /// Wall-clock duration; 0 if the span was never exited.
    pub wall_nanos: u64,
    /// Whether the span was exited before the snapshot.
    pub closed: bool,
}

#[derive(Debug, Clone)]
struct SpanRec {
    name: &'static str,
    depth: u32,
    sim_nanos: u64,
    start_nanos: u64,
    end_nanos: Option<u64>,
}

#[derive(Debug, Default)]
struct ShardData {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: Vec<SpanRec>,
}

/// Number of recorder shards. Threads are pinned round-robin, so up to
/// this many workers record without ever sharing a lock.
const SHARDS: usize = 16;

thread_local! {
    /// This thread's shard index (`usize::MAX` until assigned).
    static SHARD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Stack of open span ids on this thread, for nesting depth/parents.
    static SPAN_STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// Sharded [`Observer`] implementation.
///
/// Counters and histograms are keyed by their `&'static str` name inside
/// per-shard `BTreeMap`s; each thread records into the shard it was
/// pinned to on first use, so worker threads contend only when two of
/// them hash to the same shard (16 shards vs. the handful of campaign
/// workers makes that rare, and the critical section is a map bump).
/// [`Recorder::snapshot`] merges all shards.
pub struct Recorder {
    epoch: Instant,
    next_shard: AtomicUsize,
    shards: Vec<Mutex<ShardData>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh recorder; wall-time offsets are measured from this call.
    pub fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            next_shard: AtomicUsize::new(0),
            shards: (0..SHARDS)
                .map(|_| Mutex::new(ShardData::default()))
                .collect(),
        }
    }

    fn shard_index(&self) -> usize {
        SHARD_SLOT.with(|slot| {
            let mut idx = slot.get();
            if idx == usize::MAX {
                idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
                slot.set(idx);
            }
            idx % SHARDS
        })
    }

    fn with_shard<R>(&self, f: impl FnOnce(&mut ShardData) -> R) -> R {
        let idx = self.shard_index();
        let mut guard = self.shards[idx].lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Merges every shard into one snapshot. Counters with the same name
    /// are summed, histograms merged; spans are sorted by wall start.
    pub fn snapshot(&self) -> RecorderSnapshot {
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        let mut spans = Vec::new();
        for shard in &self.shards {
            let data = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (name, v) in &data.counters {
                *counters.entry(name).or_insert(0) += v;
            }
            for (name, h) in &data.histograms {
                histograms.entry(name).or_default().merge(h);
            }
            for rec in &data.spans {
                spans.push(SpanSnap {
                    name: rec.name,
                    depth: rec.depth,
                    sim_nanos: rec.sim_nanos,
                    wall_start_nanos: rec.start_nanos,
                    wall_nanos: rec
                        .end_nanos
                        .map_or(0, |e| e.saturating_sub(rec.start_nanos)),
                    closed: rec.end_nanos.is_some(),
                });
            }
        }
        spans.sort_by(|a, b| (a.wall_start_nanos, a.name).cmp(&(b.wall_start_nanos, b.name)));
        RecorderSnapshot {
            counters,
            histograms,
            spans,
        }
    }
}

impl Observer for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, name: &'static str, sim_nanos: u64) -> SpanId {
        let start_nanos = self.now_nanos();
        let depth = SPAN_STACK.with(|s| s.borrow().len() as u32);
        let shard = self.shard_index();
        let slot = {
            let mut guard = self.shards[shard].lock().unwrap_or_else(|e| e.into_inner());
            guard.spans.push(SpanRec {
                name,
                depth,
                sim_nanos,
                start_nanos,
                end_nanos: None,
            });
            guard.spans.len() - 1
        };
        let id = SpanId::encode(shard, slot);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        id
    }

    fn span_exit(&self, id: SpanId) {
        let Some((shard, slot)) = id.decode() else {
            return;
        };
        let end = self.now_nanos();
        if let Some(shard) = self.shards.get(shard) {
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(rec) = guard.spans.get_mut(slot) {
                rec.end_nanos = Some(end);
            }
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|open| *open == id) {
                stack.remove(pos);
            }
        });
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.with_shard(|data| *data.counters.entry(name).or_insert(0) += delta);
    }

    fn record(&self, name: &'static str, value: u64) {
        self.with_shard(|data| data.histograms.entry(name).or_default().record(value));
    }
}

/// Merged view of everything a [`Recorder`] saw.
#[derive(Debug, Clone, Default)]
pub struct RecorderSnapshot {
    /// Counter totals, summed across shards, keyed by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Merged histograms keyed by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Every recorded span, sorted by wall start time.
    pub spans: Vec<SpanSnap>,
}

impl RecorderSnapshot {
    /// Counter total by name (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Per-name span aggregation: `(count, total wall nanoseconds)`.
    pub fn span_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for span in &self.spans {
            let entry = totals.entry(span.name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += span.wall_nanos;
        }
        totals
    }

    /// JSON dump: `{counters: {..}, histograms: {..}, spans: [..]}`.
    pub fn to_json(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), Value::U64(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.to_string(), h.to_json()))
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| {
                obj([
                    ("name", Value::Str(s.name.to_string())),
                    ("depth", Value::U64(s.depth as u64)),
                    ("sim_nanos", Value::U64(s.sim_nanos)),
                    ("wall_start_nanos", Value::U64(s.wall_start_nanos)),
                    ("wall_nanos", Value::U64(s.wall_nanos)),
                    ("closed", Value::Bool(s.closed)),
                ])
            })
            .collect();
        obj([
            ("counters", Value::Obj(counters)),
            ("histograms", Value::Obj(histograms)),
            ("spans", Value::Arr(spans)),
        ])
    }
}

/// One structured JSON document describing a run: a fixed envelope
/// (`tool`, `schema`) plus named sections in insertion order.
///
/// Section producers decide their own determinism contract; by
/// convention everything under a section named `timing` is wall-clock
/// derived (and thus varies run to run) while every other section must
/// be identical across same-seed runs.
#[derive(Debug, Clone)]
pub struct RunManifest {
    tool: String,
    schema: u32,
    sections: Vec<(String, Value)>,
}

impl RunManifest {
    /// Manifest schema version written into the envelope.
    pub const SCHEMA: u32 = 1;

    /// New manifest for the named tool (e.g. `"snake campaign"`).
    pub fn new(tool: impl Into<String>) -> RunManifest {
        RunManifest {
            tool: tool.into(),
            schema: RunManifest::SCHEMA,
            sections: Vec::new(),
        }
    }

    /// Appends (or replaces) a named section.
    pub fn set_section(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.sections.push((name, value));
        }
    }

    /// A section by name.
    pub fn section(&self, name: &str) -> Option<&Value> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// The whole manifest as one JSON object.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("tool".to_string(), Value::Str(self.tool.clone())),
            ("schema".to_string(), Value::U64(self.schema as u64)),
        ];
        pairs.extend(self.sections.iter().cloned());
        Value::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn null_observer_is_disabled_and_returns_none() {
        let obs = NullObserver;
        assert!(!obs.enabled());
        let id = obs.span_enter("x", 1);
        assert_eq!(id, SpanId::NONE);
        obs.span_exit(id);
        obs.counter_add("c", 1);
        obs.record("h", 1);
    }

    #[test]
    fn counters_sum_across_threads() {
        let rec = Arc::new(Recorder::new());
        thread::scope(|scope| {
            for _ in 0..8 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        rec.counter_add("hits", 1);
                    }
                    rec.record("lat", 7);
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("hits"), 8000);
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 56);
        assert_eq!((h.min, h.max, h.mean()), (7, 7, 7));
    }

    #[test]
    fn spans_nest_and_stamp_both_clocks() {
        let rec = Recorder::new();
        let outer = rec.span_enter("outer", 100);
        let inner = rec.span_enter("inner", 200);
        rec.span_exit(inner);
        rec.span_exit(outer);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.sim_nanos, 100);
        assert_eq!(inner.sim_nanos, 200);
        assert!(outer.closed && inner.closed);
        assert!(inner.wall_start_nanos >= outer.wall_start_nanos);
        let totals = snap.span_totals();
        assert_eq!(totals["outer"].0, 1);
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let rec = Recorder::new();
        {
            let _g = span(&rec, "guarded", 0);
        }
        let snap = rec.snapshot();
        assert!(snap.spans[0].closed);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        h.record(0); // bit length 0
        h.record(1); // bit length 1
        h.record(1023); // bit length 10
        h.record(1024); // bit length 11
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.count, 4);
    }

    #[test]
    fn manifest_sections_are_ordered_and_replaceable() {
        let mut m = RunManifest::new("test");
        m.set_section("run", Value::U64(1));
        m.set_section("memo", Value::U64(2));
        m.set_section("run", Value::U64(3));
        let json = m.to_json();
        assert_eq!(json.get("tool").and_then(Value::as_str), Some("test"));
        assert_eq!(json.get("run").and_then(Value::as_u64), Some(3));
        let text = json.to_string_compact();
        let run = text.find("\"run\"").unwrap();
        let memo = text.find("\"memo\"").unwrap();
        assert!(run < memo, "sections keep insertion order");
    }
}
