//! The built-in DCCP header description (RFC 4340) and typed accessors.
//!
//! We model the generic header with extended (48-bit) sequence numbers
//! (`X = 1`), which is what Linux CCID-2 uses, and include the
//! acknowledgment-number subheader on every packet. Real DATA packets omit
//! the subheader and REQUEST carries a service code in its place; carrying
//! the extra 8 bytes uniformly keeps the header description fixed-layout
//! without changing any protocol behaviour the search can observe.

use std::sync::{Arc, OnceLock};

use crate::spec::{read_bits, write_bits};
use crate::{FieldRef, FormatSpec, Header, PacketError};

/// The DCCP generic header (plus acknowledgment subheader) in the SNAKE
/// header description language: 13 fields, 24 bytes.
pub const DCCP_HEADER_DESCRIPTION: &str = "\
# DCCP generic header with X=1 and the acknowledgment subheader, RFC 4340
header dccp {
    src_port     : 16
    dst_port     : 16
    data_offset  : 8
    ccval        : 4
    cscov        : 4
    checksum     : 16
    res          : 3
    type         : 4
    x            : 1
    reserved     : 8
    seq          : 48
    ack_reserved : 16
    ack          : 48
}
";

/// Returns the shared DCCP [`FormatSpec`] (24-byte header, 13 fields).
pub fn dccp_spec() -> Arc<FormatSpec> {
    static SPEC: OnceLock<Arc<FormatSpec>> = OnceLock::new();
    Arc::clone(SPEC.get_or_init(|| {
        Arc::new(crate::parse_spec(DCCP_HEADER_DESCRIPTION).expect("built-in DCCP spec is valid"))
    }))
}

/// DCCP packet types (the 4-bit `type` field, RFC 4340 §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum DccpPacketType {
    Request,
    Response,
    Data,
    Ack,
    DataAck,
    CloseReq,
    Close,
    Reset,
    Sync,
    SyncAck,
}

impl DccpPacketType {
    /// The wire code for this type.
    pub fn code(&self) -> u8 {
        match self {
            DccpPacketType::Request => 0,
            DccpPacketType::Response => 1,
            DccpPacketType::Data => 2,
            DccpPacketType::Ack => 3,
            DccpPacketType::DataAck => 4,
            DccpPacketType::CloseReq => 5,
            DccpPacketType::Close => 6,
            DccpPacketType::Reset => 7,
            DccpPacketType::Sync => 8,
            DccpPacketType::SyncAck => 9,
        }
    }

    /// Decodes a wire code; codes 10–15 are reserved and yield `None`.
    pub fn from_code(code: u8) -> Option<DccpPacketType> {
        Some(match code {
            0 => DccpPacketType::Request,
            1 => DccpPacketType::Response,
            2 => DccpPacketType::Data,
            3 => DccpPacketType::Ack,
            4 => DccpPacketType::DataAck,
            5 => DccpPacketType::CloseReq,
            6 => DccpPacketType::Close,
            7 => DccpPacketType::Reset,
            8 => DccpPacketType::Sync,
            9 => DccpPacketType::SyncAck,
            _ => return None,
        })
    }

    /// All types in wire-code order (used by strategy generation).
    pub fn all() -> &'static [DccpPacketType] {
        &[
            DccpPacketType::Request,
            DccpPacketType::Response,
            DccpPacketType::Data,
            DccpPacketType::Ack,
            DccpPacketType::DataAck,
            DccpPacketType::CloseReq,
            DccpPacketType::Close,
            DccpPacketType::Reset,
            DccpPacketType::Sync,
            DccpPacketType::SyncAck,
        ]
    }

    /// A stable label used in strategies and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DccpPacketType::Request => "REQUEST",
            DccpPacketType::Response => "RESPONSE",
            DccpPacketType::Data => "DATA",
            DccpPacketType::Ack => "ACK",
            DccpPacketType::DataAck => "DATAACK",
            DccpPacketType::CloseReq => "CLOSEREQ",
            DccpPacketType::Close => "CLOSE",
            DccpPacketType::Reset => "RESET",
            DccpPacketType::Sync => "SYNC",
            DccpPacketType::SyncAck => "SYNCACK",
        }
    }

    /// Whether packets of this type carry a meaningful acknowledgment number.
    pub fn carries_ack(&self) -> bool {
        !matches!(self, DccpPacketType::Request | DccpPacketType::Data)
    }
}

impl std::fmt::Display for DccpPacketType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Read-only typed view over a DCCP header buffer.
#[derive(Debug, Clone, Copy)]
pub struct DccpView<'a> {
    buf: &'a [u8],
}

impl<'a> DccpView<'a> {
    /// Wraps raw bytes as a DCCP header.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::BufferTooShort`] if `buf` is shorter than 24
    /// bytes.
    pub fn new(buf: &'a [u8]) -> Result<Self, PacketError> {
        let needed = dccp_spec().byte_len();
        if buf.len() < needed {
            return Err(PacketError::BufferTooShort {
                needed,
                got: buf.len(),
            });
        }
        Ok(DccpView { buf })
    }

    /// Reads a field straight from the buffer — `new` validated the
    /// length once (same rationale as `TcpView::get`).
    fn get(&self, field: FieldRef) -> u64 {
        read_bits(self.buf, field.bit_offset, field.bits)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        self.get(dccp_refs().src_port) as u16
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        self.get(dccp_refs().dst_port) as u16
    }

    /// 48-bit sequence number.
    pub fn seq(&self) -> u64 {
        self.get(dccp_refs().seq)
    }

    /// 48-bit acknowledgment number.
    pub fn ack(&self) -> u64 {
        self.get(dccp_refs().ack)
    }

    /// Checksum field (`0` on every packet the simulation builds).
    pub fn checksum(&self) -> u16 {
        self.get(dccp_refs().checksum) as u16
    }

    /// The reserved bits alongside the acknowledgment number, which the
    /// simulated CCID repurposes as a loss-echo counter.
    pub fn ack_reserved(&self) -> u16 {
        self.get(dccp_refs().ack_reserved) as u16
    }

    /// Packet type, or `None` for a reserved type code (such packets are
    /// ignored by receivers per RFC 4340 §5.1).
    pub fn packet_type(&self) -> Option<DccpPacketType> {
        DccpPacketType::from_code(self.get(dccp_refs().ptype) as u8)
    }
}

/// Pre-resolved [`FieldRef`]s for the DCCP fields read per delivered
/// packet — same rationale as the TCP table: by-name resolution is a
/// string-keyed hash lookup, too slow for the per-packet path.
#[derive(Debug, Clone, Copy)]
struct DccpRefs {
    src_port: FieldRef,
    dst_port: FieldRef,
    data_offset: FieldRef,
    x: FieldRef,
    seq: FieldRef,
    ack: FieldRef,
    ptype: FieldRef,
    checksum: FieldRef,
    ack_reserved: FieldRef,
}

fn dccp_refs() -> &'static DccpRefs {
    static REFS: OnceLock<DccpRefs> = OnceLock::new();
    REFS.get_or_init(|| {
        let spec = dccp_spec();
        let f = |name| spec.field(name).expect("dccp spec field");
        DccpRefs {
            src_port: f("src_port"),
            dst_port: f("dst_port"),
            data_offset: f("data_offset"),
            x: f("x"),
            seq: f("seq"),
            ack: f("ack"),
            ptype: f("type"),
            checksum: f("checksum"),
            ack_reserved: f("ack_reserved"),
        }
    })
}

/// Builder for DCCP headers.
#[derive(Debug, Clone)]
pub struct DccpBuilder {
    src_port: u16,
    dst_port: u16,
    packet_type: DccpPacketType,
    seq: u64,
    ack: u64,
    ack_reserved: u16,
}

impl DccpBuilder {
    /// Starts a builder for a packet of the given type between two ports.
    pub fn new(src_port: u16, dst_port: u16, packet_type: DccpPacketType) -> Self {
        DccpBuilder {
            src_port,
            dst_port,
            packet_type,
            seq: 0,
            ack: 0,
            ack_reserved: 0,
        }
    }

    /// Sets the 48-bit sequence number (masked to 48 bits).
    pub fn seq(mut self, seq: u64) -> Self {
        self.seq = seq & SEQ_MASK;
        self
    }

    /// Sets the 48-bit acknowledgment number (masked to 48 bits).
    pub fn ack(mut self, ack: u64) -> Self {
        self.ack = ack & SEQ_MASK;
        self
    }

    /// Sets the reserved bits alongside the acknowledgment number (the
    /// simulated CCID's loss-echo counter).
    pub fn ack_reserved(mut self, ack_reserved: u16) -> Self {
        self.ack_reserved = ack_reserved;
        self
    }

    /// Builds the header bytes (same direct-write hot path as
    /// `TcpBuilder::build`).
    pub fn build(self) -> Header {
        let spec = dccp_spec();
        let mut bytes = vec![0u8; spec.byte_len()];
        let r = dccp_refs();
        for (field, value) in [
            (r.src_port, self.src_port as u64),
            (r.dst_port, self.dst_port as u64),
            (r.data_offset, (spec.byte_len() / 4) as u64),
            (r.ptype, self.packet_type.code() as u64),
            (r.x, 1),
            (r.seq, self.seq),
            (r.ack, self.ack),
            (r.ack_reserved, self.ack_reserved as u64),
        ] {
            write_bits(&mut bytes, field.bit_offset, field.bits, value);
        }
        spec.parse(bytes).expect("built to spec length")
    }
}

/// Mask for DCCP's 48-bit sequence number space.
pub const SEQ_MASK: u64 = (1 << 48) - 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_24_bytes_13_fields() {
        let spec = dccp_spec();
        assert_eq!(spec.byte_len(), 24);
        assert_eq!(spec.field_count(), 13);
    }

    #[test]
    fn builder_view_roundtrip() {
        let h = DccpBuilder::new(5001, 40_002, DccpPacketType::DataAck)
            .seq(0x0000_ABCD_1234_5678 & SEQ_MASK)
            .ack(42)
            .build();
        let v = DccpView::new(h.bytes()).unwrap();
        assert_eq!(v.src_port(), 5001);
        assert_eq!(v.dst_port(), 40_002);
        assert_eq!(v.seq(), 0x0000_ABCD_1234_5678 & SEQ_MASK);
        assert_eq!(v.ack(), 42);
        assert_eq!(v.packet_type(), Some(DccpPacketType::DataAck));
    }

    #[test]
    fn type_codes_roundtrip() {
        for &t in DccpPacketType::all() {
            assert_eq!(DccpPacketType::from_code(t.code()), Some(t));
        }
        assert_eq!(DccpPacketType::from_code(10), None);
        assert_eq!(DccpPacketType::from_code(15), None);
    }

    #[test]
    fn seq_masked_to_48_bits() {
        let h = DccpBuilder::new(1, 2, DccpPacketType::Data)
            .seq(u64::MAX)
            .build();
        let v = DccpView::new(h.bytes()).unwrap();
        assert_eq!(v.seq(), SEQ_MASK);
    }

    #[test]
    fn carries_ack_matches_rfc() {
        assert!(!DccpPacketType::Request.carries_ack());
        assert!(!DccpPacketType::Data.carries_ack());
        assert!(DccpPacketType::Response.carries_ack());
        assert!(DccpPacketType::Ack.carries_ack());
        assert!(DccpPacketType::Sync.carries_ack());
    }

    #[test]
    fn view_rejects_short_buffer() {
        assert!(DccpView::new(&[0u8; 23]).is_err());
    }
}
