//! The header description language.
//!
//! The paper describes "a simple language to describe the header structure"
//! from which parsing code is generated. This module implements that
//! language as a line-oriented text format:
//!
//! ```text
//! # TCP header (RFC 793), one field per line: `name : bits`
//! header tcp {
//!     src_port : 16
//!     dst_port : 16
//!     seq      : 32
//! }
//! ```
//!
//! Blank lines and `#` comments are ignored. Field order is layout order,
//! MSB first.

use crate::{FieldSpec, FormatSpec, PacketError};

/// Parses a header description in the text language into a [`FormatSpec`].
///
/// # Errors
///
/// Returns [`PacketError::ParseError`] with a line number for syntax errors,
/// and the underlying spec-validation errors (duplicate names, zero widths)
/// for semantic ones.
///
/// # Examples
///
/// ```
/// let spec = snake_packet::parse_spec(
///     "header demo {\n  kind : 4\n  len : 12\n}\n",
/// )?;
/// assert_eq!(spec.name(), "demo");
/// assert_eq!(spec.byte_len(), 2);
/// # Ok::<(), snake_packet::PacketError>(())
/// ```
pub fn parse_spec(text: &str) -> Result<FormatSpec, PacketError> {
    let mut name: Option<String> = None;
    let mut fields = Vec::new();
    let mut in_body = false;
    let mut closed = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if closed {
            return Err(err(lineno, "unexpected content after closing `}`"));
        }
        if !in_body {
            let rest = line
                .strip_prefix("header")
                .ok_or_else(|| err(lineno, "expected `header <name> {`"))?;
            let rest = rest.trim();
            let body = rest
                .strip_suffix('{')
                .ok_or_else(|| err(lineno, "expected `{` at end of header line"))?;
            let n = body.trim();
            if n.is_empty()
                || !n
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(err(lineno, "invalid header name"));
            }
            name = Some(n.to_owned());
            in_body = true;
            continue;
        }
        if line == "}" {
            in_body = false;
            closed = true;
            continue;
        }
        let (fname, fbits) = line
            .split_once(':')
            .ok_or_else(|| err(lineno, "expected `name : bits`"))?;
        let fname = fname.trim();
        if fname.is_empty() || !fname.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err(lineno, "invalid field name"));
        }
        let bits: u32 = fbits
            .trim()
            .parse()
            .map_err(|_| err(lineno, "field width must be an unsigned integer"))?;
        fields.push(FieldSpec::new(fname, bits));
    }

    if in_body {
        return Err(err(text.lines().count(), "missing closing `}`"));
    }
    let name = name.ok_or_else(|| err(1, "empty description: no `header` block"))?;
    FormatSpec::new(name, fields)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn err(line: usize, reason: &str) -> PacketError {
    PacketError::ParseError {
        line,
        reason: reason.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_description() {
        let spec = parse_spec("header x {\n a : 8\n b : 8\n}").unwrap();
        assert_eq!(spec.name(), "x");
        assert_eq!(spec.field_count(), 2);
        assert_eq!(spec.total_bits(), 16);
    }

    #[test]
    fn ignores_comments_and_blank_lines() {
        let text = "\n# leading comment\nheader y { # trailing\n\n  f : 4 # bits\n}\n\n";
        let spec = parse_spec(text).unwrap();
        assert_eq!(spec.name(), "y");
        assert_eq!(spec.field_count(), 1);
    }

    #[test]
    fn rejects_missing_brace() {
        assert!(matches!(
            parse_spec("header z {\n a : 1\n"),
            Err(PacketError::ParseError { .. })
        ));
    }

    #[test]
    fn rejects_bad_width() {
        let e = parse_spec("header z {\n a : wide\n}").unwrap_err();
        assert!(matches!(e, PacketError::ParseError { line: 2, .. }));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse_spec("header z {\n a : 1\n}\nextra").unwrap_err();
        assert!(matches!(e, PacketError::ParseError { .. }));
    }

    #[test]
    fn rejects_duplicate_fields_semantically() {
        let e = parse_spec("header z {\n a : 1\n a : 2\n}").unwrap_err();
        assert!(matches!(e, PacketError::InvalidFieldSpec { .. }));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_spec("").is_err());
        assert!(parse_spec("# only comments\n").is_err());
    }

    #[test]
    fn builtin_tcp_description_roundtrips() {
        let spec = parse_spec(crate::tcp::TCP_HEADER_DESCRIPTION).unwrap();
        let builtin = crate::tcp::tcp_spec();
        assert_eq!(spec.name(), builtin.name());
        assert_eq!(spec.total_bits(), builtin.total_bits());
        assert_eq!(spec.field_count(), builtin.field_count());
    }

    #[test]
    fn builtin_dccp_description_roundtrips() {
        let spec = parse_spec(crate::dccp::DCCP_HEADER_DESCRIPTION).unwrap();
        let builtin = crate::dccp::dccp_spec();
        assert_eq!(spec.name(), builtin.name());
        assert_eq!(spec.total_bits(), builtin.total_bits());
        assert_eq!(spec.field_count(), builtin.field_count());
    }
}
