use std::error::Error;
use std::fmt;

/// Errors produced when describing, parsing, or manipulating packet headers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PacketError {
    /// A field name was looked up that does not exist in the format spec.
    UnknownField {
        /// The offending field name.
        name: String,
    },
    /// A value does not fit in the field's bit width.
    ValueOutOfRange {
        /// Field that was being written.
        field: String,
        /// The value that did not fit.
        value: u64,
        /// The field's width in bits.
        bits: u32,
    },
    /// A buffer was shorter than the header described by the spec.
    BufferTooShort {
        /// Bytes required by the spec.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A field wider than 64 bits was declared; fields are limited to 64 bits.
    FieldTooWide {
        /// The offending field name.
        field: String,
        /// The declared width in bits.
        bits: u32,
    },
    /// A field with an empty or duplicate name, or zero width, was declared.
    InvalidFieldSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// The header description text could not be parsed.
    ParseError {
        /// Line number (1-based) where the error occurred.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A mutation was not applicable (for example divide by zero).
    InvalidMutation {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::UnknownField { name } => write!(f, "unknown header field `{name}`"),
            PacketError::ValueOutOfRange { field, value, bits } => {
                write!(
                    f,
                    "value {value} does not fit in {bits}-bit field `{field}`"
                )
            }
            PacketError::BufferTooShort { needed, got } => {
                write!(
                    f,
                    "buffer too short for header: need {needed} bytes, got {got}"
                )
            }
            PacketError::FieldTooWide { field, bits } => {
                write!(f, "field `{field}` is {bits} bits wide; the maximum is 64")
            }
            PacketError::InvalidFieldSpec { reason } => {
                write!(f, "invalid field specification: {reason}")
            }
            PacketError::ParseError { line, reason } => {
                write!(f, "header description parse error on line {line}: {reason}")
            }
            PacketError::InvalidMutation { reason } => write!(f, "invalid mutation: {reason}"),
        }
    }
}

impl Error for PacketError {}
