/// A single fixed-width field in a packet header description.
///
/// Fields are laid out back to back in declaration order, most significant
/// bit first, exactly like the classic RFC header diagrams. Widths of 1..=64
/// bits are supported, which covers every field in the TCP and DCCP headers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldSpec {
    name: String,
    bits: u32,
}

impl FieldSpec {
    /// Creates a field description.
    ///
    /// Width validation happens when the field is assembled into a
    /// [`FormatSpec`](crate::FormatSpec); this constructor is infallible so
    /// specs can be written as simple literals.
    pub fn new(name: impl Into<String>, bits: u32) -> Self {
        FieldSpec {
            name: name.into(),
            bits,
        }
    }

    /// The field's name, unique within its format spec.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field's width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The largest value representable in this field.
    ///
    /// A 64-bit field saturates at `u64::MAX`.
    pub fn max_value(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Whether this field is a single-bit flag.
    pub fn is_flag(&self) -> bool {
        self.bits == 1
    }
}

/// A resolved reference to a field inside a [`FormatSpec`](crate::FormatSpec):
/// its index, bit offset from the start of the header, and width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldRef {
    pub(crate) index: usize,
    pub(crate) bit_offset: u32,
    pub(crate) bits: u32,
}

impl FieldRef {
    /// Position of the field in the spec's declaration order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Offset of the field's most significant bit from the start of the
    /// header, in bits.
    pub fn bit_offset(&self) -> u32 {
        self.bit_offset
    }

    /// Width of the field in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The largest value representable in this field.
    pub fn max_value(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_value_small_fields() {
        assert_eq!(FieldSpec::new("flag", 1).max_value(), 1);
        assert_eq!(FieldSpec::new("nibble", 4).max_value(), 15);
        assert_eq!(FieldSpec::new("port", 16).max_value(), 65_535);
        assert_eq!(FieldSpec::new("seq", 32).max_value(), u32::MAX as u64);
    }

    #[test]
    fn max_value_full_width() {
        assert_eq!(FieldSpec::new("wide", 64).max_value(), u64::MAX);
    }

    #[test]
    fn flag_detection() {
        assert!(FieldSpec::new("syn", 1).is_flag());
        assert!(!FieldSpec::new("window", 16).is_flag());
    }
}
