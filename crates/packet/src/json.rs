//! JSON round-tripping for packet-layer types used in the campaign journal.

use snake_json::{obj, FromJson, JsonError, ObjExt, ToJson, Value};

use crate::FieldMutation;

impl ToJson for FieldMutation {
    fn to_json(&self) -> Value {
        let (op, arg) = match *self {
            FieldMutation::Set(v) => ("set", Some(v)),
            FieldMutation::Min => ("min", None),
            FieldMutation::Max => ("max", None),
            FieldMutation::Random => ("random", None),
            FieldMutation::Add(v) => ("add", Some(v)),
            FieldMutation::Sub(v) => ("sub", Some(v)),
            FieldMutation::Mul(v) => ("mul", Some(v)),
            FieldMutation::Div(v) => ("div", Some(v)),
        };
        match arg {
            Some(v) => obj([("op", Value::Str(op.to_owned())), ("arg", Value::U64(v))]),
            None => obj([("op", Value::Str(op.to_owned()))]),
        }
    }
}

impl FromJson for FieldMutation {
    fn from_json(value: &Value) -> Result<FieldMutation, JsonError> {
        let op = value.req_str("op")?;
        Ok(match op {
            "set" => FieldMutation::Set(value.req_u64("arg")?),
            "min" => FieldMutation::Min,
            "max" => FieldMutation::Max,
            "random" => FieldMutation::Random,
            "add" => FieldMutation::Add(value.req_u64("arg")?),
            "sub" => FieldMutation::Sub(value.req_u64("arg")?),
            "mul" => FieldMutation::Mul(value.req_u64("arg")?),
            "div" => FieldMutation::Div(value.req_u64("arg")?),
            other => return Err(JsonError::decode(format!("unknown mutation op `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_roundtrip() {
        let all = [
            FieldMutation::Set(3),
            FieldMutation::Min,
            FieldMutation::Max,
            FieldMutation::Random,
            FieldMutation::Add(25),
            FieldMutation::Sub(1),
            FieldMutation::Mul(2),
            FieldMutation::Div(2),
        ];
        for m in all {
            let text = m.to_json().to_string_compact();
            let back = FieldMutation::from_json(&snake_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, m, "{text}");
        }
    }

    #[test]
    fn unknown_op_rejected() {
        let v = snake_json::parse(r#"{"op":"frobnicate"}"#).unwrap();
        assert!(FieldMutation::from_json(&v).is_err());
    }
}
