//! Packet header format descriptions and generic field manipulation.
//!
//! SNAKE (DSN 2015) requires only two protocol-specific inputs: a description
//! of the packet header formats and the protocol state machine. This crate
//! implements the first input: a small language for describing packet headers
//! as sequences of bit-width fields ([`FormatSpec`]), a runtime
//! parser/serializer over raw byte buffers ([`Header`]), and the generic field
//! mutations used by the *lie* basic attack ([`FieldMutation`]).
//!
//! The paper generates C++ parsing code from the description; here the
//! description is interpreted at runtime, which is equivalent for the search
//! and keeps the tool fully data-driven: testing a new protocol only requires
//! a new [`FormatSpec`] (plus a state machine, see `snake-statemachine`).
//!
//! Built-in specs are provided for TCP ([`tcp::tcp_spec`]) and DCCP
//! ([`dccp::dccp_spec`]), the two protocols evaluated in the paper.
//!
//! # Examples
//!
//! ```
//! use snake_packet::{tcp, FieldMutation};
//!
//! # fn main() -> Result<(), snake_packet::PacketError> {
//! let spec = tcp::tcp_spec();
//! let mut hdr = spec.new_header();
//! hdr.set("seq", 1_000)?;
//! hdr.set("syn", 1)?;
//! assert_eq!(hdr.get("seq")?, 1_000);
//!
//! // The "lie" basic attack mutates an arbitrary header field.
//! let mut rng = rand::rngs::mock::StepRng::new(7, 1);
//! FieldMutation::Max.apply(&mut hdr, "window", &mut rng)?;
//! assert_eq!(hdr.get("window")?, u16::MAX as u64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod dsl;
mod error;
mod field;
mod json;
mod mutation;
mod spec;

pub mod dccp;
pub mod tcp;

pub use dsl::parse_spec;
pub use error::PacketError;
pub use field::{FieldRef, FieldSpec};
pub use mutation::FieldMutation;
pub use spec::{FormatSpec, Header};
