use rand::Rng;

use crate::{Header, PacketError};

/// A field modification used by the *lie* basic attack (paper §IV-C).
///
/// The paper's proxy "intercepts a packet and modifies a specified field
/// before sending it on. Modifications supported include setting particular
/// values, setting random values, or adding/subtracting/multiplying/dividing
/// the current value by some factor", with a value list "chosen based on the
/// field-type to be likely to cause unexpected behavior" — zero, the field
/// minimum, and the field maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FieldMutation {
    /// Set the field to a specific value (truncated to the field width is an
    /// error; callers pass in-range values).
    Set(u64),
    /// Set the field to its minimum value (zero).
    Min,
    /// Set the field to its maximum representable value.
    Max,
    /// Set the field to a uniformly random in-range value.
    Random,
    /// Add a constant, wrapping within the field width.
    Add(u64),
    /// Subtract a constant, wrapping within the field width.
    Sub(u64),
    /// Multiply by a constant, wrapping within the field width.
    Mul(u64),
    /// Divide by a non-zero constant.
    Div(u64),
}

impl FieldMutation {
    /// The standard mutation list SNAKE generates for every non-flag header
    /// field (flags get the shorter [`flag_mutations`](Self::flag_mutations)
    /// list since min/max/random collapse onto set-0/set-1).
    pub fn standard_mutations() -> &'static [FieldMutation] {
        &[
            FieldMutation::Min,
            FieldMutation::Max,
            FieldMutation::Random,
            FieldMutation::Add(1),
            // A "slightly higher" in-window bump that decisively outruns
            // the victim's own sequence advancement — the increment behind
            // the DCCP in-window modification attack (paper §VI-B.2).
            FieldMutation::Add(25),
            FieldMutation::Sub(1),
            FieldMutation::Mul(2),
            FieldMutation::Div(2),
        ]
    }

    /// The mutation list for single-bit flag fields: set and clear.
    pub fn flag_mutations() -> &'static [FieldMutation] {
        &[FieldMutation::Set(0), FieldMutation::Set(1)]
    }

    /// Applies the mutation to `field` of `header` in place.
    ///
    /// Arithmetic mutations wrap within the field's bit width, mirroring what
    /// happens on the wire when a field overflows.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::UnknownField`] for unknown fields,
    /// [`PacketError::InvalidMutation`] for division by zero, and
    /// [`PacketError::ValueOutOfRange`] if a `Set` value does not fit.
    pub fn apply<R: Rng + ?Sized>(
        self,
        header: &mut Header,
        field: &str,
        rng: &mut R,
    ) -> Result<(), PacketError> {
        let fref = header.spec().field(field)?;
        let max = fref.max_value();
        let cur = header.get_ref(fref)?;
        let new = match self {
            FieldMutation::Set(v) => v,
            FieldMutation::Min => 0,
            FieldMutation::Max => max,
            FieldMutation::Random => {
                if max == u64::MAX {
                    rng.gen()
                } else {
                    rng.gen_range(0..=max)
                }
            }
            FieldMutation::Add(k) => wrap(cur.wrapping_add(k), max),
            FieldMutation::Sub(k) => wrap(cur.wrapping_sub(k), max),
            FieldMutation::Mul(k) => wrap(cur.wrapping_mul(k), max),
            FieldMutation::Div(k) => {
                if k == 0 {
                    return Err(PacketError::InvalidMutation {
                        reason: "division by zero".to_owned(),
                    });
                }
                cur / k
            }
        };
        header.set_ref(fref, new)
    }

    /// A short, stable label used in strategy names and reports.
    pub fn label(&self) -> String {
        match self {
            FieldMutation::Set(v) => format!("set={v}"),
            FieldMutation::Min => "min".to_owned(),
            FieldMutation::Max => "max".to_owned(),
            FieldMutation::Random => "rand".to_owned(),
            FieldMutation::Add(k) => format!("add={k}"),
            FieldMutation::Sub(k) => format!("sub={k}"),
            FieldMutation::Mul(k) => format!("mul={k}"),
            FieldMutation::Div(k) => format!("div={k}"),
        }
    }
}

impl std::fmt::Display for FieldMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Wraps a value into the 0..=max range where max is an all-ones mask.
fn wrap(v: u64, max: u64) -> u64 {
    v & max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldSpec, FormatSpec};
    use rand::rngs::mock::StepRng;
    use std::sync::Arc;

    fn header() -> Header {
        let spec = Arc::new(
            FormatSpec::new(
                "m",
                vec![
                    FieldSpec::new("v", 16),
                    FieldSpec::new("flag", 1),
                    FieldSpec::new("pad", 7),
                ],
            )
            .unwrap(),
        );
        spec.new_header()
    }

    #[test]
    fn min_max_set() {
        let mut h = header();
        let mut rng = StepRng::new(0, 1);
        h.set("v", 77).unwrap();
        FieldMutation::Max.apply(&mut h, "v", &mut rng).unwrap();
        assert_eq!(h.get("v").unwrap(), 65_535);
        FieldMutation::Min.apply(&mut h, "v", &mut rng).unwrap();
        assert_eq!(h.get("v").unwrap(), 0);
        FieldMutation::Set(1234)
            .apply(&mut h, "v", &mut rng)
            .unwrap();
        assert_eq!(h.get("v").unwrap(), 1234);
    }

    #[test]
    fn arithmetic_wraps_in_field_width() {
        let mut h = header();
        let mut rng = StepRng::new(0, 1);
        h.set("v", 65_535).unwrap();
        FieldMutation::Add(1).apply(&mut h, "v", &mut rng).unwrap();
        assert_eq!(h.get("v").unwrap(), 0, "add wraps at field width");
        FieldMutation::Sub(1).apply(&mut h, "v", &mut rng).unwrap();
        assert_eq!(h.get("v").unwrap(), 65_535, "sub wraps at field width");
        h.set("v", 40_000).unwrap();
        FieldMutation::Mul(2).apply(&mut h, "v", &mut rng).unwrap();
        assert_eq!(h.get("v").unwrap(), 80_000 % 65_536);
    }

    #[test]
    fn divide_truncates_and_rejects_zero() {
        let mut h = header();
        let mut rng = StepRng::new(0, 1);
        h.set("v", 9).unwrap();
        FieldMutation::Div(2).apply(&mut h, "v", &mut rng).unwrap();
        assert_eq!(h.get("v").unwrap(), 4);
        let err = FieldMutation::Div(0)
            .apply(&mut h, "v", &mut rng)
            .unwrap_err();
        assert!(matches!(err, PacketError::InvalidMutation { .. }));
    }

    #[test]
    fn random_stays_in_range_for_flag() {
        let mut h = header();
        let mut rng = rand::thread_rng();
        for _ in 0..64 {
            FieldMutation::Random
                .apply(&mut h, "flag", &mut rng)
                .unwrap();
            assert!(h.get("flag").unwrap() <= 1);
        }
    }

    #[test]
    fn set_out_of_range_rejected() {
        let mut h = header();
        let mut rng = StepRng::new(0, 1);
        let err = FieldMutation::Set(2)
            .apply(&mut h, "flag", &mut rng)
            .unwrap_err();
        assert!(matches!(err, PacketError::ValueOutOfRange { .. }));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FieldMutation::Set(5).label(), "set=5");
        assert_eq!(FieldMutation::Random.label(), "rand");
        assert_eq!(FieldMutation::Mul(2).to_string(), "mul=2");
    }
}
