use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{FieldRef, FieldSpec, PacketError};

/// A complete packet header format: an ordered list of bit-width fields.
///
/// This is SNAKE's machine-readable equivalent of the header diagrams in a
/// protocol RFC. The attack proxy uses it to parse, rewrite, and fabricate
/// headers for any protocol without protocol-specific code.
///
/// Construct one with [`FormatSpec::new`], from the text description language
/// with [`parse_spec`](crate::parse_spec), or use the built-in
/// [`tcp_spec`](crate::tcp::tcp_spec) / [`dccp_spec`](crate::dccp::dccp_spec).
#[derive(Debug, Clone)]
pub struct FormatSpec {
    name: String,
    fields: Vec<FieldSpec>,
    refs: Vec<FieldRef>,
    by_name: HashMap<String, usize>,
    total_bits: u32,
}

impl FormatSpec {
    /// Builds a format spec from an ordered list of fields.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::FieldTooWide`] for fields over 64 bits and
    /// [`PacketError::InvalidFieldSpec`] for zero-width fields, empty names,
    /// or duplicate names.
    pub fn new(name: impl Into<String>, fields: Vec<FieldSpec>) -> Result<Self, PacketError> {
        let name = name.into();
        let mut by_name = HashMap::with_capacity(fields.len());
        let mut refs = Vec::with_capacity(fields.len());
        let mut offset = 0u32;
        for (index, f) in fields.iter().enumerate() {
            if f.bits() == 0 {
                return Err(PacketError::InvalidFieldSpec {
                    reason: format!("field `{}` has zero width", f.name()),
                });
            }
            if f.bits() > 64 {
                return Err(PacketError::FieldTooWide {
                    field: f.name().to_owned(),
                    bits: f.bits(),
                });
            }
            if f.name().is_empty() {
                return Err(PacketError::InvalidFieldSpec {
                    reason: format!("field #{index} has an empty name"),
                });
            }
            if by_name.insert(f.name().to_owned(), index).is_some() {
                return Err(PacketError::InvalidFieldSpec {
                    reason: format!("duplicate field name `{}`", f.name()),
                });
            }
            refs.push(FieldRef {
                index,
                bit_offset: offset,
                bits: f.bits(),
            });
            offset += f.bits();
        }
        Ok(FormatSpec {
            name,
            fields,
            refs,
            by_name,
            total_bits: offset,
        })
    }

    /// The protocol name this spec describes (for example `"tcp"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// Number of fields in the header.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Total header size in bits.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Header size in bytes, rounded up to a whole byte.
    pub fn byte_len(&self) -> usize {
        (self.total_bits as usize).div_ceil(8)
    }

    /// Looks up a field by name.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::UnknownField`] if no field has that name.
    pub fn field(&self, name: &str) -> Result<FieldRef, PacketError> {
        self.by_name
            .get(name)
            .map(|&i| self.refs[i])
            .ok_or_else(|| PacketError::UnknownField {
                name: name.to_owned(),
            })
    }

    /// Looks up a field by declaration index.
    pub fn field_at(&self, index: usize) -> Option<(&FieldSpec, FieldRef)> {
        self.fields.get(index).map(|f| (f, self.refs[index]))
    }

    /// Reads a field's value from a raw header buffer.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::BufferTooShort`] if the buffer does not hold a
    /// complete header.
    pub fn get(&self, buf: &[u8], field: FieldRef) -> Result<u64, PacketError> {
        self.check_len(buf.len())?;
        Ok(read_bits(buf, field.bit_offset, field.bits))
    }

    /// Writes a field's value into a raw header buffer.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::BufferTooShort`] if the buffer does not hold a
    /// complete header, or [`PacketError::ValueOutOfRange`] if `value` does
    /// not fit in the field.
    pub fn set(&self, buf: &mut [u8], field: FieldRef, value: u64) -> Result<(), PacketError> {
        self.check_len(buf.len())?;
        if value > field.max_value() {
            return Err(PacketError::ValueOutOfRange {
                field: self.fields[field.index].name().to_owned(),
                value,
                bits: field.bits,
            });
        }
        write_bits(buf, field.bit_offset, field.bits, value);
        Ok(())
    }

    /// Creates a zeroed header laid out according to this spec.
    pub fn new_header(self: &Arc<Self>) -> Header {
        Header {
            spec: Arc::clone(self),
            bytes: vec![0u8; self.byte_len()],
        }
    }

    /// Wraps existing header bytes for field access.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::BufferTooShort`] if `bytes` is shorter than the
    /// header this spec describes. Extra trailing bytes are preserved
    /// untouched (they model protocol options/padding).
    pub fn parse(self: &Arc<Self>, bytes: Vec<u8>) -> Result<Header, PacketError> {
        self.check_len(bytes.len())?;
        Ok(Header {
            spec: Arc::clone(self),
            bytes,
        })
    }

    fn check_len(&self, got: usize) -> Result<(), PacketError> {
        let needed = self.byte_len();
        if got < needed {
            Err(PacketError::BufferTooShort { needed, got })
        } else {
            Ok(())
        }
    }
}

/// An owned header buffer bound to its [`FormatSpec`], offering by-name field
/// access. This is the unit the attack proxy manipulates.
#[derive(Clone)]
pub struct Header {
    spec: Arc<FormatSpec>,
    bytes: Vec<u8>,
}

impl Header {
    /// The spec this header is laid out by.
    pub fn spec(&self) -> &Arc<FormatSpec> {
        &self.spec
    }

    /// Raw header bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the header, returning the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Reads a field by name.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::UnknownField`] for unknown names.
    pub fn get(&self, field: &str) -> Result<u64, PacketError> {
        let f = self.spec.field(field)?;
        self.spec.get(&self.bytes, f)
    }

    /// Writes a field by name.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::UnknownField`] for unknown names or
    /// [`PacketError::ValueOutOfRange`] if the value does not fit.
    pub fn set(&mut self, field: &str, value: u64) -> Result<(), PacketError> {
        let f = self.spec.field(field)?;
        self.spec.set(&mut self.bytes, f, value)
    }

    /// Reads a field by resolved reference (avoids the name lookup).
    pub fn get_ref(&self, field: FieldRef) -> Result<u64, PacketError> {
        self.spec.get(&self.bytes, field)
    }

    /// Writes a field by resolved reference (avoids the name lookup).
    pub fn set_ref(&mut self, field: FieldRef, value: u64) -> Result<(), PacketError> {
        self.spec.set(&mut self.bytes, field, value)
    }
}

impl fmt::Debug for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Header");
        s.field("spec", &self.spec.name());
        for field in self.spec.fields() {
            if let Ok(v) = self.get(field.name()) {
                s.field(field.name(), &v);
            }
        }
        s.finish()
    }
}

impl PartialEq for Header {
    fn eq(&self, other: &Self) -> bool {
        self.spec.name() == other.spec.name() && self.bytes == other.bytes
    }
}

impl Eq for Header {}

/// Reads `bits` bits starting `bit_offset` bits into `buf`, MSB first.
///
/// Hot path: field reads happen for every header field of every packet an
/// endpoint or the proxy handles, so this loads the byte window containing
/// the field as one big-endian word instead of looping per bit.
pub(crate) fn read_bits(buf: &[u8], bit_offset: u32, bits: u32) -> u64 {
    debug_assert!((1..=64).contains(&bits));
    let first = (bit_offset / 8) as usize;
    let last = ((bit_offset + bits - 1) / 8) as usize;
    let span = last - first + 1;
    if span <= 8 {
        let mut window = [0u8; 8];
        window[8 - span..].copy_from_slice(&buf[first..=last]);
        let word = u64::from_be_bytes(window);
        let tail = 7 - ((bit_offset + bits - 1) % 8);
        (word >> tail) & mask(bits)
    } else {
        // A 64-bit field straddling 9 bytes: widen through u128.
        let mut window = [0u8; 16];
        window[16 - span..].copy_from_slice(&buf[first..=last]);
        let word = u128::from_be_bytes(window);
        let tail = 7 - ((bit_offset + bits - 1) % 8);
        ((word >> tail) & mask(bits) as u128) as u64
    }
}

/// Writes `bits` bits of `value` starting `bit_offset` bits into `buf`,
/// MSB first. Same word-window strategy as [`read_bits`].
pub(crate) fn write_bits(buf: &mut [u8], bit_offset: u32, bits: u32, value: u64) {
    debug_assert!((1..=64).contains(&bits));
    let first = (bit_offset / 8) as usize;
    let last = ((bit_offset + bits - 1) / 8) as usize;
    let span = last - first + 1;
    let tail = 7 - ((bit_offset + bits - 1) % 8);
    if span <= 8 {
        let mut window = [0u8; 8];
        window[8 - span..].copy_from_slice(&buf[first..=last]);
        let mut word = u64::from_be_bytes(window);
        word &= !(mask(bits) << tail);
        word |= (value & mask(bits)) << tail;
        buf[first..=last].copy_from_slice(&word.to_be_bytes()[8 - span..]);
    } else {
        let mut window = [0u8; 16];
        window[16 - span..].copy_from_slice(&buf[first..=last]);
        let mut word = u128::from_be_bytes(window);
        word &= !((mask(bits) as u128) << tail);
        word |= ((value & mask(bits)) as u128) << tail;
        buf[first..=last].copy_from_slice(&word.to_be_bytes()[16 - span..]);
    }
}

/// All-ones mask for the low `bits` bits (`bits` in `1..=64`).
fn mask(bits: u32) -> u64 {
    u64::MAX >> (64 - bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_spec() -> Arc<FormatSpec> {
        Arc::new(
            FormatSpec::new(
                "simple",
                vec![
                    FieldSpec::new("a", 4),
                    FieldSpec::new("b", 12),
                    FieldSpec::new("c", 32),
                    FieldSpec::new("flag", 1),
                    FieldSpec::new("rest", 7),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn layout_is_sequential_msb_first() {
        let spec = simple_spec();
        assert_eq!(spec.total_bits(), 56);
        assert_eq!(spec.byte_len(), 7);
        let a = spec.field("a").unwrap();
        let b = spec.field("b").unwrap();
        let c = spec.field("c").unwrap();
        assert_eq!(a.bit_offset(), 0);
        assert_eq!(b.bit_offset(), 4);
        assert_eq!(c.bit_offset(), 16);
    }

    #[test]
    fn roundtrip_all_fields() {
        let spec = simple_spec();
        let mut h = spec.new_header();
        h.set("a", 0xF).unwrap();
        h.set("b", 0xABC).unwrap();
        h.set("c", 0xDEADBEEF).unwrap();
        h.set("flag", 1).unwrap();
        h.set("rest", 0x55).unwrap();
        assert_eq!(h.get("a").unwrap(), 0xF);
        assert_eq!(h.get("b").unwrap(), 0xABC);
        assert_eq!(h.get("c").unwrap(), 0xDEADBEEF);
        assert_eq!(h.get("flag").unwrap(), 1);
        assert_eq!(h.get("rest").unwrap(), 0x55);
    }

    #[test]
    fn neighbouring_fields_do_not_clobber() {
        let spec = simple_spec();
        let mut h = spec.new_header();
        h.set("a", 0xF).unwrap();
        h.set("b", 0).unwrap();
        assert_eq!(h.get("a").unwrap(), 0xF, "writing b must not clobber a");
        h.set("b", 0xFFF).unwrap();
        h.set("c", 0).unwrap();
        assert_eq!(h.get("b").unwrap(), 0xFFF, "writing c must not clobber b");
    }

    #[test]
    fn value_out_of_range_is_rejected() {
        let spec = simple_spec();
        let mut h = spec.new_header();
        let err = h.set("a", 16).unwrap_err();
        assert!(matches!(err, PacketError::ValueOutOfRange { .. }));
    }

    #[test]
    fn unknown_field_is_rejected() {
        let spec = simple_spec();
        let h = spec.new_header();
        assert!(matches!(
            h.get("nope"),
            Err(PacketError::UnknownField { .. })
        ));
    }

    #[test]
    fn duplicate_field_names_rejected() {
        let err = FormatSpec::new("dup", vec![FieldSpec::new("x", 8), FieldSpec::new("x", 8)])
            .unwrap_err();
        assert!(matches!(err, PacketError::InvalidFieldSpec { .. }));
    }

    #[test]
    fn zero_width_field_rejected() {
        let err = FormatSpec::new("zero", vec![FieldSpec::new("x", 0)]).unwrap_err();
        assert!(matches!(err, PacketError::InvalidFieldSpec { .. }));
    }

    #[test]
    fn too_wide_field_rejected() {
        let err = FormatSpec::new("wide", vec![FieldSpec::new("x", 65)]).unwrap_err();
        assert!(matches!(err, PacketError::FieldTooWide { .. }));
    }

    #[test]
    fn parse_rejects_short_buffer() {
        let spec = simple_spec();
        assert!(matches!(
            spec.parse(vec![0u8; 3]),
            Err(PacketError::BufferTooShort { .. })
        ));
    }

    #[test]
    fn parse_preserves_trailing_bytes() {
        let spec = simple_spec();
        let mut bytes = vec![0u8; 9];
        bytes[7] = 0xAA;
        bytes[8] = 0xBB;
        let h = spec.parse(bytes).unwrap();
        assert_eq!(&h.bytes()[7..], &[0xAA, 0xBB]);
    }

    #[test]
    fn full_width_64_bit_field() {
        let spec = Arc::new(FormatSpec::new("wide", vec![FieldSpec::new("x", 64)]).unwrap());
        let mut h = spec.new_header();
        h.set("x", u64::MAX).unwrap();
        assert_eq!(h.get("x").unwrap(), u64::MAX);
    }

    #[test]
    fn header_debug_lists_fields() {
        let spec = simple_spec();
        let h = spec.new_header();
        let dbg = format!("{h:?}");
        assert!(dbg.contains("simple"));
        assert!(dbg.contains("flag"));
    }
}
