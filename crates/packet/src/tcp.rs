//! The built-in TCP header description (RFC 793) and typed accessors.
//!
//! The header is described field-by-field in the same description language a
//! user would supply for a new protocol; the typed [`TcpView`] /
//! [`TcpBuilder`] wrappers are conveniences used by the TCP engine and tests.

use std::sync::{Arc, OnceLock};

use crate::spec::{read_bits, write_bits};
use crate::{FieldRef, FormatSpec, Header, PacketError};

/// The TCP header in the SNAKE header description language.
///
/// Flags are declared as individual one-bit fields so the generic *lie*
/// mutation on a flag field produces exactly the invalid-flag-combination
/// packets the paper studies (§VI-A.2).
pub const TCP_HEADER_DESCRIPTION: &str = "\
# TCP header, RFC 793
header tcp {
    src_port    : 16
    dst_port    : 16
    seq         : 32
    ack         : 32
    data_offset : 4
    reserved    : 6
    urg         : 1
    ack_flag    : 1
    psh         : 1
    rst         : 1
    syn         : 1
    fin         : 1
    window      : 16
    checksum    : 16
    urgent_ptr  : 16
}
";

/// Returns the shared TCP [`FormatSpec`] (20-byte header, 15 fields).
pub fn tcp_spec() -> Arc<FormatSpec> {
    static SPEC: OnceLock<Arc<FormatSpec>> = OnceLock::new();
    Arc::clone(SPEC.get_or_init(|| {
        Arc::new(crate::parse_spec(TCP_HEADER_DESCRIPTION).expect("built-in TCP spec is valid"))
    }))
}

/// Pre-resolved [`FieldRef`]s for every TCP header field the engine reads
/// per packet. Resolving by name costs a string-keyed hash lookup; the TCP
/// engine and proxy parse headers for every delivered packet, so the refs
/// are resolved once and reused.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TcpRefs {
    pub src_port: FieldRef,
    pub dst_port: FieldRef,
    pub seq: FieldRef,
    pub ack: FieldRef,
    pub data_offset: FieldRef,
    pub urg: FieldRef,
    pub ack_flag: FieldRef,
    pub psh: FieldRef,
    pub rst: FieldRef,
    pub syn: FieldRef,
    pub fin: FieldRef,
    pub window: FieldRef,
    pub checksum: FieldRef,
    pub urgent_ptr: FieldRef,
}

pub(crate) fn tcp_refs() -> &'static TcpRefs {
    static REFS: OnceLock<TcpRefs> = OnceLock::new();
    REFS.get_or_init(|| {
        let spec = tcp_spec();
        let f = |name| spec.field(name).expect("tcp spec field");
        let refs = TcpRefs {
            src_port: f("src_port"),
            dst_port: f("dst_port"),
            seq: f("seq"),
            ack: f("ack"),
            data_offset: f("data_offset"),
            urg: f("urg"),
            ack_flag: f("ack_flag"),
            psh: f("psh"),
            rst: f("rst"),
            syn: f("syn"),
            fin: f("fin"),
            window: f("window"),
            checksum: f("checksum"),
            urgent_ptr: f("urgent_ptr"),
        };
        // The per-packet accessors below read and write the six flag bits
        // as one contiguous window; the spec declares them back to back.
        let flags = [
            &refs.urg,
            &refs.ack_flag,
            &refs.psh,
            &refs.rst,
            &refs.syn,
            &refs.fin,
        ];
        for (i, flag) in flags.into_iter().enumerate() {
            debug_assert_eq!(flag.bit_offset(), refs.urg.bit_offset() + i as u32);
            debug_assert_eq!(flag.bits(), 1);
        }
        refs
    })
}

/// TCP control flags as a compact value type.
///
/// `Display` renders the conventional `SYN+ACK` style names, used throughout
/// strategy labels and attack reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags {
    /// URG flag.
    pub urg: bool,
    /// ACK flag.
    pub ack: bool,
    /// PSH flag.
    pub psh: bool,
    /// RST flag.
    pub rst: bool,
    /// SYN flag.
    pub syn: bool,
    /// FIN flag.
    pub fin: bool,
}

impl TcpFlags {
    /// Flags for a connection-opening SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ..TcpFlags::none()
    };
    /// Flags for the SYN+ACK handshake reply.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        ..TcpFlags::none()
    };
    /// Flags for a pure acknowledgment.
    pub const ACK: TcpFlags = TcpFlags {
        ack: true,
        ..TcpFlags::none()
    };
    /// Flags for a data segment with PSH.
    pub const PSH_ACK: TcpFlags = TcpFlags {
        psh: true,
        ack: true,
        ..TcpFlags::none()
    };
    /// Flags for a FIN (always carries ACK in practice).
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        ack: true,
        ..TcpFlags::none()
    };
    /// Flags for a reset.
    pub const RST: TcpFlags = TcpFlags {
        rst: true,
        ..TcpFlags::none()
    };
    /// Flags for a reset that acknowledges data.
    pub const RST_ACK: TcpFlags = TcpFlags {
        rst: true,
        ack: true,
        ..TcpFlags::none()
    };

    /// No flags set. (A packet like this is never valid on the wire; Linux
    /// 3.0.0 nevertheless responds to it — paper §VI-A.2.)
    pub const fn none() -> TcpFlags {
        TcpFlags {
            urg: false,
            ack: false,
            psh: false,
            rst: false,
            syn: false,
            fin: false,
        }
    }

    /// Number of flags set.
    pub fn count(&self) -> u32 {
        [self.urg, self.ack, self.psh, self.rst, self.syn, self.fin]
            .iter()
            .filter(|&&b| b)
            .count() as u32
    }

    /// Whether this is a combination a correct implementation would ever
    /// send: at most one of SYN/FIN/RST, and every non-SYN packet carries
    /// ACK. Everything else is "nonsensical" in the paper's terminology.
    pub fn is_sensible(&self) -> bool {
        let exclusive = [self.syn, self.fin, self.rst]
            .iter()
            .filter(|&&b| b)
            .count();
        if exclusive > 1 {
            return false;
        }
        if self.count() == 0 {
            return false;
        }
        // A bare SYN or RST is fine; anything else needs ACK.
        let lone_syn = self.syn && self.count() == 1;
        let lone_rst = self.rst && self.count() == 1;
        if !(self.ack || lone_syn || lone_rst) {
            return false;
        }
        true
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if self.psh {
            parts.push("PSH");
        }
        if self.urg {
            parts.push("URG");
        }
        if self.ack {
            parts.push("ACK");
        }
        if parts.is_empty() {
            f.write_str("NONE")
        } else {
            f.write_str(&parts.join("+"))
        }
    }
}

/// The packet-type classification SNAKE keys strategies on for TCP.
///
/// The paper applies basic attacks to "all packets of the same type observed
/// in the same state"; this enum is that type. `PshAck` is distinguished from
/// `Data` because the Duplicate-Acknowledgment-Rate-Limiting attack
/// (§VI-A.6) specifically targets the occasional PSH+ACK segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum TcpPacketType {
    Syn,
    SynAck,
    Ack,
    Data,
    PshAck,
    FinAck,
    Rst,
    /// A flag combination no correct implementation sends.
    Invalid,
}

impl TcpPacketType {
    /// Classifies a segment from its flags and payload length.
    pub fn classify(flags: TcpFlags, payload_len: u32) -> TcpPacketType {
        if !flags.is_sensible() {
            return TcpPacketType::Invalid;
        }
        if flags.rst {
            return TcpPacketType::Rst;
        }
        if flags.syn {
            return if flags.ack {
                TcpPacketType::SynAck
            } else {
                TcpPacketType::Syn
            };
        }
        if flags.fin {
            return TcpPacketType::FinAck;
        }
        if payload_len > 0 {
            return if flags.psh {
                TcpPacketType::PshAck
            } else {
                TcpPacketType::Data
            };
        }
        TcpPacketType::Ack
    }

    /// All classifications, in a stable order (used by strategy generation).
    pub fn all() -> &'static [TcpPacketType] {
        &[
            TcpPacketType::Syn,
            TcpPacketType::SynAck,
            TcpPacketType::Ack,
            TcpPacketType::Data,
            TcpPacketType::PshAck,
            TcpPacketType::FinAck,
            TcpPacketType::Rst,
            TcpPacketType::Invalid,
        ]
    }

    /// A stable label used in strategies and reports.
    pub fn label(&self) -> &'static str {
        match self {
            TcpPacketType::Syn => "SYN",
            TcpPacketType::SynAck => "SYN+ACK",
            TcpPacketType::Ack => "ACK",
            TcpPacketType::Data => "DATA",
            TcpPacketType::PshAck => "PSH+ACK",
            TcpPacketType::FinAck => "FIN+ACK",
            TcpPacketType::Rst => "RST",
            TcpPacketType::Invalid => "INVALID",
        }
    }
}

impl std::fmt::Display for TcpPacketType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Read-only typed view over a TCP header buffer.
#[derive(Debug, Clone, Copy)]
pub struct TcpView<'a> {
    buf: &'a [u8],
}

impl<'a> TcpView<'a> {
    /// Wraps raw bytes as a TCP header.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::BufferTooShort`] if `buf` is shorter than 20
    /// bytes.
    pub fn new(buf: &'a [u8]) -> Result<Self, PacketError> {
        if buf.len() < tcp_spec().byte_len() {
            return Err(PacketError::BufferTooShort {
                needed: tcp_spec().byte_len(),
                got: buf.len(),
            });
        }
        Ok(TcpView { buf })
    }

    /// Reads a field straight from the buffer. `new` validated the length
    /// once; going through the spec again would re-check it and bump the
    /// shared spec's refcount on every field of every delivered packet.
    fn get(&self, field: FieldRef) -> u64 {
        read_bits(self.buf, field.bit_offset, field.bits)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        self.get(tcp_refs().src_port) as u16
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        self.get(tcp_refs().dst_port) as u16
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        self.get(tcp_refs().seq) as u32
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        self.get(tcp_refs().ack) as u32
    }

    /// Header length in 32-bit words (`5` on every packet the simulation
    /// builds; anything else means the field was mutated in flight).
    pub fn data_offset(&self) -> u8 {
        self.get(tcp_refs().data_offset) as u8
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        self.get(tcp_refs().window) as u16
    }

    /// Checksum field (`0` on every packet the simulation builds).
    pub fn checksum(&self) -> u16 {
        self.get(tcp_refs().checksum) as u16
    }

    /// Urgent pointer.
    pub fn urgent_ptr(&self) -> u16 {
        self.get(tcp_refs().urgent_ptr) as u16
    }

    /// Control flags, read as one six-bit window (URG..FIN are declared
    /// contiguously — asserted when the refs are resolved).
    pub fn flags(&self) -> TcpFlags {
        let word = read_bits(self.buf, tcp_refs().urg.bit_offset, 6);
        TcpFlags {
            urg: word & 0b10_0000 != 0,
            ack: word & 0b01_0000 != 0,
            psh: word & 0b00_1000 != 0,
            rst: word & 0b00_0100 != 0,
            syn: word & 0b00_0010 != 0,
            fin: word & 0b00_0001 != 0,
        }
    }
}

/// Builder for TCP headers; the engine and the off-path injection attacks
/// both construct segments through this.
#[derive(Debug, Clone)]
pub struct TcpBuilder {
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    window: u16,
    urgent_ptr: u16,
    flags: TcpFlags,
}

impl TcpBuilder {
    /// Starts a builder for a segment between two ports.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        TcpBuilder {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            window: 65_535,
            urgent_ptr: 0,
            flags: TcpFlags::none(),
        }
    }

    /// Sets the sequence number.
    pub fn seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Sets the acknowledgment number.
    pub fn ack(mut self, ack: u32) -> Self {
        self.ack = ack;
        self
    }

    /// Sets the receive window.
    pub fn window(mut self, window: u16) -> Self {
        self.window = window;
        self
    }

    /// Sets the control flags.
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Sets the urgent pointer.
    pub fn urgent_ptr(mut self, urgent_ptr: u16) -> Self {
        self.urgent_ptr = urgent_ptr;
        self
    }

    /// Builds the header bytes.
    ///
    /// Hot path: the engine constructs a header for every segment it
    /// sends, so fields are written straight into a local buffer (one
    /// length check at the final `parse`, no per-field spec traffic) and
    /// the six flag bits go in as a single window write.
    pub fn build(self) -> Header {
        let spec = tcp_spec();
        let mut bytes = vec![0u8; spec.byte_len()];
        let r = tcp_refs();
        let f = &self.flags;
        let flag_word = ((f.urg as u64) << 5)
            | ((f.ack as u64) << 4)
            | ((f.psh as u64) << 3)
            | ((f.rst as u64) << 2)
            | ((f.syn as u64) << 1)
            | (f.fin as u64);
        for (field, value) in [
            (r.src_port, self.src_port as u64),
            (r.dst_port, self.dst_port as u64),
            (r.seq, self.seq as u64),
            (r.ack, self.ack as u64),
            (r.data_offset, 5),
            (r.window, self.window as u64),
            (r.urgent_ptr, self.urgent_ptr as u64),
        ] {
            write_bits(&mut bytes, field.bit_offset, field.bits, value);
        }
        write_bits(&mut bytes, r.urg.bit_offset, 6, flag_word);
        spec.parse(bytes).expect("built to spec length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_20_bytes_15_fields() {
        let spec = tcp_spec();
        assert_eq!(spec.byte_len(), 20);
        assert_eq!(spec.field_count(), 15);
        assert_eq!(spec.total_bits(), 160);
    }

    #[test]
    fn builder_view_roundtrip() {
        let h = TcpBuilder::new(8080, 40_001)
            .seq(0xDEAD_BEEF)
            .ack(0x0102_0304)
            .window(32_768)
            .flags(TcpFlags::SYN_ACK)
            .build();
        let v = TcpView::new(h.bytes()).unwrap();
        assert_eq!(v.src_port(), 8080);
        assert_eq!(v.dst_port(), 40_001);
        assert_eq!(v.seq(), 0xDEAD_BEEF);
        assert_eq!(v.ack(), 0x0102_0304);
        assert_eq!(v.window(), 32_768);
        assert_eq!(v.flags(), TcpFlags::SYN_ACK);
    }

    #[test]
    fn classify_handshake_types() {
        assert_eq!(
            TcpPacketType::classify(TcpFlags::SYN, 0),
            TcpPacketType::Syn
        );
        assert_eq!(
            TcpPacketType::classify(TcpFlags::SYN_ACK, 0),
            TcpPacketType::SynAck
        );
        assert_eq!(
            TcpPacketType::classify(TcpFlags::ACK, 0),
            TcpPacketType::Ack
        );
        assert_eq!(
            TcpPacketType::classify(TcpFlags::ACK, 1460),
            TcpPacketType::Data
        );
        assert_eq!(
            TcpPacketType::classify(TcpFlags::PSH_ACK, 1460),
            TcpPacketType::PshAck
        );
        assert_eq!(
            TcpPacketType::classify(TcpFlags::FIN_ACK, 0),
            TcpPacketType::FinAck
        );
        assert_eq!(
            TcpPacketType::classify(TcpFlags::RST, 0),
            TcpPacketType::Rst
        );
        assert_eq!(
            TcpPacketType::classify(TcpFlags::RST_ACK, 0),
            TcpPacketType::Rst
        );
    }

    #[test]
    fn classify_nonsense_flags_as_invalid() {
        // The paper's example: SYN+FIN+ACK+RST.
        let combo = TcpFlags {
            syn: true,
            fin: true,
            ack: true,
            rst: true,
            ..TcpFlags::none()
        };
        assert_eq!(TcpPacketType::classify(combo, 0), TcpPacketType::Invalid);
        // Null flags are never valid.
        assert_eq!(
            TcpPacketType::classify(TcpFlags::none(), 0),
            TcpPacketType::Invalid
        );
        // SYN+FIN.
        let synfin = TcpFlags {
            syn: true,
            fin: true,
            ..TcpFlags::none()
        };
        assert_eq!(TcpPacketType::classify(synfin, 0), TcpPacketType::Invalid);
        // FIN without ACK.
        let bare_fin = TcpFlags {
            fin: true,
            ..TcpFlags::none()
        };
        assert_eq!(TcpPacketType::classify(bare_fin, 0), TcpPacketType::Invalid);
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN+ACK");
        assert_eq!(TcpFlags::none().to_string(), "NONE");
        let combo = TcpFlags {
            syn: true,
            fin: true,
            ack: true,
            psh: true,
            ..TcpFlags::none()
        };
        assert_eq!(combo.to_string(), "SYN+FIN+PSH+ACK");
    }

    #[test]
    fn sensible_flag_combinations() {
        assert!(TcpFlags::SYN.is_sensible());
        assert!(TcpFlags::SYN_ACK.is_sensible());
        assert!(TcpFlags::ACK.is_sensible());
        assert!(TcpFlags::RST.is_sensible());
        assert!(TcpFlags::RST_ACK.is_sensible());
        assert!(TcpFlags::FIN_ACK.is_sensible());
        assert!(!TcpFlags::none().is_sensible());
        assert!(!TcpFlags {
            syn: true,
            fin: true,
            ..TcpFlags::none()
        }
        .is_sensible());
        assert!(!TcpFlags {
            psh: true,
            ..TcpFlags::none()
        }
        .is_sensible());
    }

    #[test]
    fn view_rejects_short_buffer() {
        assert!(TcpView::new(&[0u8; 19]).is_err());
    }
}
