//! Property-based tests for the header format machinery: the attack proxy
//! rewrites arbitrary fields with arbitrary values, so get/set roundtrips
//! and field isolation must hold for every layout, not just the built-in
//! TCP/DCCP specs.

use std::sync::Arc;

use proptest::prelude::*;
use snake_packet::{FieldMutation, FieldSpec, FormatSpec};

/// Strategy: a random valid spec of 1..12 fields with widths 1..=48 and
/// unique names.
fn arb_spec() -> impl Strategy<Value = Arc<FormatSpec>> {
    prop::collection::vec(1u32..=48, 1..12).prop_map(|widths| {
        let fields = widths
            .into_iter()
            .enumerate()
            .map(|(i, w)| FieldSpec::new(format!("f{i}"), w))
            .collect();
        Arc::new(FormatSpec::new("prop", fields).expect("valid spec"))
    })
}

proptest! {
    /// Writing any in-range value to any field reads back exactly.
    #[test]
    fn set_get_roundtrip(spec in arb_spec(), seed in any::<u64>()) {
        let mut header = spec.new_header();
        let mut s = seed;
        for field in spec.fields() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let value = s % (field.max_value().wrapping_add(1).max(1));
            header.set(field.name(), value).unwrap();
            prop_assert_eq!(header.get(field.name()).unwrap(), value);
        }
    }

    /// Writing one field never disturbs any other field.
    #[test]
    fn field_isolation(spec in arb_spec(), seed in any::<u64>()) {
        let mut header = spec.new_header();
        // Fill everything with a deterministic pattern.
        let mut s = seed;
        let mut expected = Vec::new();
        for field in spec.fields() {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let value = s % (field.max_value().wrapping_add(1).max(1));
            header.set(field.name(), value).unwrap();
            expected.push((field.name().to_owned(), value));
        }
        // Rewrite each field to max; all later reads of the others agree.
        for i in 0..spec.field_count() {
            let (spec_field, _) = spec.field_at(i).unwrap();
            let name = spec_field.name().to_owned();
            let max = spec_field.max_value();
            header.set(&name, max).unwrap();
            for (j, (other, val)) in expected.iter().enumerate() {
                if j != i {
                    prop_assert_eq!(header.get(other).unwrap(), *val, "field {} after writing {}", other, name);
                }
            }
            // Restore.
            header.set(&name, expected[i].1).unwrap();
        }
    }

    /// Every mutation leaves the field in range.
    #[test]
    fn mutations_stay_in_range(spec in arb_spec(), k in 0u64..1_000_000, seed in any::<u64>()) {
        let mut header = spec.new_header();
        let mut rng = rand::rngs::mock::StepRng::new(seed, 0x9E3779B97F4A7C15);
        let mutations = [
            FieldMutation::Min,
            FieldMutation::Max,
            FieldMutation::Random,
            FieldMutation::Add(k),
            FieldMutation::Sub(k),
            FieldMutation::Mul(k.max(1)),
            FieldMutation::Div(k.max(1)),
        ];
        for field in spec.fields() {
            for m in mutations {
                m.apply(&mut header, field.name(), &mut rng).unwrap();
                prop_assert!(header.get(field.name()).unwrap() <= field.max_value());
            }
        }
    }

    /// Serialization via raw bytes is stable: parsing the bytes back gives
    /// the same field values.
    #[test]
    fn parse_roundtrip(spec in arb_spec(), seed in any::<u64>()) {
        let mut header = spec.new_header();
        let mut s = seed;
        for field in spec.fields() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            header.set(field.name(), s % (field.max_value().wrapping_add(1).max(1))).unwrap();
        }
        let bytes = header.bytes().to_vec();
        let reparsed = spec.parse(bytes).unwrap();
        for field in spec.fields() {
            prop_assert_eq!(reparsed.get(field.name()).unwrap(), header.get(field.name()).unwrap());
        }
    }
}

proptest! {
    /// The description-language parser accepts everything the printer of a
    /// generated spec produces.
    #[test]
    fn dsl_roundtrip(widths in prop::collection::vec(1u32..=48, 1..10)) {
        let mut text = String::from("header prop {\n");
        for (i, w) in widths.iter().enumerate() {
            text.push_str(&format!("  f{i} : {w}\n"));
        }
        text.push('}');
        let spec = snake_packet::parse_spec(&text).unwrap();
        prop_assert_eq!(spec.field_count(), widths.len());
        prop_assert_eq!(spec.total_bits(), widths.iter().sum::<u32>());
    }
}
