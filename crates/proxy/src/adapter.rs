use std::sync::Arc;

use snake_netsim::{Addr, Packet, Protocol};
use snake_packet::dccp::{dccp_spec, DccpBuilder, DccpPacketType, DccpView};
use snake_packet::tcp::{tcp_spec, TcpBuilder, TcpFlags, TcpPacketType, TcpView};
use snake_packet::FormatSpec;
use snake_statemachine::{dccp_state_machine, tcp_state_machine, StateMachine};

/// Everything the proxy knows when fabricating a spoofed packet: the
/// (observed or guessed) connection endpoints and the chosen sequence
/// value. Deliberately *not* the connection's real sequence state — an
/// off-path attacker does not have it.
#[derive(Debug, Clone, Copy)]
pub struct InjectContext {
    /// Spoofed source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Value for the sequence field.
    pub seq: u64,
}

/// Protocol-specific knowledge the proxy needs: how to classify packets
/// into the type labels the state machine speaks, and how to fabricate
/// packets for injection. One adapter per protocol; everything else in the
/// proxy is generic.
///
/// The `Send + Sync` bounds come with the proxy being a
/// [`Tap`](snake_netsim::Tap), so paused simulator snapshots can be shared
/// across executor threads; `clone_adapter` makes the proxy forkable.
pub trait ProtocolAdapter: std::fmt::Debug + Send + Sync + 'static {
    /// The wire protocol this adapter handles.
    fn protocol(&self) -> Protocol;

    /// Deep-clones the adapter as a boxed trait object (adapters are
    /// stateless, so this is cheap).
    fn clone_adapter(&self) -> Box<dyn ProtocolAdapter>;

    /// The header format spec.
    fn spec(&self) -> Arc<FormatSpec>;

    /// The connection-lifecycle state machine.
    fn machine(&self) -> Arc<StateMachine>;

    /// Initial tracked state for the client endpoint.
    fn client_initial(&self) -> &'static str;

    /// Initial tracked state for the server endpoint.
    fn server_initial(&self) -> &'static str;

    /// Classifies a packet into a type label (`None` for unparseable
    /// headers, which are forwarded untouched and untracked). Labels are
    /// `&'static str` so the per-packet hot path never allocates.
    fn classify(&self, header: &[u8], payload_len: u32) -> Option<&'static str>;

    /// Packet types worth injecting, by label.
    fn injectable_types(&self) -> &'static [&'static str];

    /// Width of the sequence field in bits (32 for TCP, 48 for DCCP).
    fn seq_bits(&self) -> u32;

    /// The stride hitseqwindow uses: the assumed receive/validity window.
    fn assumed_window(&self) -> u64;

    /// Fabricates a packet of the given type label.
    fn build_inject(&self, packet_type: &str, ctx: InjectContext) -> Option<Packet>;
}

/// Swaps source and destination (addresses and header port fields) in
/// place — the *reflect* basic attack's rewrite, generic over any spec with
/// `src_port`/`dst_port` fields.
pub fn swap_endpoints(spec: &Arc<FormatSpec>, packet: &mut Packet) {
    std::mem::swap(&mut packet.src, &mut packet.dst);
    if let (Ok(sp), Ok(dp)) = (spec.field("src_port"), spec.field("dst_port")) {
        let s = spec.get(&packet.header, sp).unwrap_or(0);
        let d = spec.get(&packet.header, dp).unwrap_or(0);
        let _ = spec.set(&mut packet.header, sp, d);
        let _ = spec.set(&mut packet.header, dp, s);
    }
}

/// The TCP adapter.
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpAdapter;

impl ProtocolAdapter for TcpAdapter {
    fn protocol(&self) -> Protocol {
        Protocol::Tcp
    }

    fn clone_adapter(&self) -> Box<dyn ProtocolAdapter> {
        Box::new(*self)
    }

    fn spec(&self) -> Arc<FormatSpec> {
        tcp_spec()
    }

    fn machine(&self) -> Arc<StateMachine> {
        tcp_state_machine()
    }

    fn client_initial(&self) -> &'static str {
        "CLOSED"
    }

    fn server_initial(&self) -> &'static str {
        "LISTEN"
    }

    fn classify(&self, header: &[u8], payload_len: u32) -> Option<&'static str> {
        let view = TcpView::new(header).ok()?;
        Some(TcpPacketType::classify(view.flags(), payload_len).label())
    }

    fn injectable_types(&self) -> &'static [&'static str] {
        &["SYN", "RST", "ACK", "FIN+ACK", "DATA"]
    }

    fn seq_bits(&self) -> u32 {
        32
    }

    fn assumed_window(&self) -> u64 {
        65_535
    }

    fn build_inject(&self, packet_type: &str, ctx: InjectContext) -> Option<Packet> {
        let (flags, payload) = match packet_type {
            "SYN" => (TcpFlags::SYN, 0),
            "RST" => (TcpFlags::RST, 0),
            "ACK" => (TcpFlags::ACK, 0),
            "FIN+ACK" => (TcpFlags::FIN_ACK, 0),
            "DATA" => (TcpFlags::ACK, 1_000),
            _ => return None,
        };
        let header = TcpBuilder::new(ctx.src.port, ctx.dst.port)
            .seq(ctx.seq as u32)
            .ack(0)
            .flags(flags)
            .build();
        Some(Packet::new(
            ctx.src,
            ctx.dst,
            Protocol::Tcp,
            header.into_bytes(),
            payload,
        ))
    }
}

/// The DCCP adapter.
#[derive(Debug, Default, Clone, Copy)]
pub struct DccpAdapter;

impl ProtocolAdapter for DccpAdapter {
    fn protocol(&self) -> Protocol {
        Protocol::Dccp
    }

    fn clone_adapter(&self) -> Box<dyn ProtocolAdapter> {
        Box::new(*self)
    }

    fn spec(&self) -> Arc<FormatSpec> {
        dccp_spec()
    }

    fn machine(&self) -> Arc<StateMachine> {
        dccp_state_machine()
    }

    fn client_initial(&self) -> &'static str {
        "CLOSED"
    }

    fn server_initial(&self) -> &'static str {
        "LISTEN"
    }

    fn classify(&self, header: &[u8], _payload_len: u32) -> Option<&'static str> {
        let view = DccpView::new(header).ok()?;
        Some(view.packet_type()?.label())
    }

    fn injectable_types(&self) -> &'static [&'static str] {
        &["REQUEST", "DATA", "ACK", "CLOSE", "RESET", "SYNC"]
    }

    fn seq_bits(&self) -> u32 {
        48
    }

    fn assumed_window(&self) -> u64 {
        // The sequence-validity window W (RFC 4340 default 100).
        100
    }

    fn build_inject(&self, packet_type: &str, ctx: InjectContext) -> Option<Packet> {
        let (ptype, payload) = match packet_type {
            "REQUEST" => (DccpPacketType::Request, 0),
            "DATA" => (DccpPacketType::Data, 1_000),
            "ACK" => (DccpPacketType::Ack, 0),
            "CLOSE" => (DccpPacketType::Close, 0),
            "RESET" => (DccpPacketType::Reset, 0),
            "SYNC" => (DccpPacketType::Sync, 0),
            _ => return None,
        };
        let header = DccpBuilder::new(ctx.src.port, ctx.dst.port, ptype)
            .seq(ctx.seq)
            .ack(ctx.seq)
            .build();
        Some(Packet::new(
            ctx.src,
            ctx.dst,
            Protocol::Dccp,
            header.into_bytes(),
            payload,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_netsim::NodeId;

    fn addr(n: usize, p: u16) -> Addr {
        Addr::new(NodeId::from_index(n), p)
    }

    #[test]
    fn tcp_classify_roundtrip() {
        let a = TcpAdapter;
        let pkt = a
            .build_inject(
                "SYN",
                InjectContext {
                    src: addr(0, 40_000),
                    dst: addr(1, 80),
                    seq: 5,
                },
            )
            .unwrap();
        assert_eq!(a.classify(&pkt.header, pkt.payload_len).unwrap(), "SYN");
        let rst = a
            .build_inject(
                "RST",
                InjectContext {
                    src: addr(0, 1),
                    dst: addr(1, 2),
                    seq: 0,
                },
            )
            .unwrap();
        assert_eq!(a.classify(&rst.header, 0).unwrap(), "RST");
    }

    #[test]
    fn dccp_classify_roundtrip() {
        let a = DccpAdapter;
        for ty in a.injectable_types() {
            let pkt = a
                .build_inject(
                    ty,
                    InjectContext {
                        src: addr(0, 1),
                        dst: addr(1, 2),
                        seq: 9,
                    },
                )
                .unwrap();
            assert_eq!(&a.classify(&pkt.header, pkt.payload_len).unwrap(), ty);
        }
    }

    #[test]
    fn unknown_type_yields_none() {
        assert!(TcpAdapter
            .build_inject(
                "WAT",
                InjectContext {
                    src: addr(0, 1),
                    dst: addr(1, 2),
                    seq: 0
                }
            )
            .is_none());
    }

    #[test]
    fn swap_endpoints_swaps_addresses_and_ports() {
        let a = TcpAdapter;
        let mut pkt = a
            .build_inject(
                "SYN",
                InjectContext {
                    src: addr(0, 40_000),
                    dst: addr(1, 80),
                    seq: 5,
                },
            )
            .unwrap();
        swap_endpoints(&a.spec(), &mut pkt);
        assert_eq!(pkt.src, addr(1, 80));
        assert_eq!(pkt.dst, addr(0, 40_000));
        let view = TcpView::new(&pkt.header).unwrap();
        assert_eq!(view.src_port(), 80);
        assert_eq!(view.dst_port(), 40_000);
    }

    #[test]
    fn machines_know_initial_states() {
        assert!(TcpAdapter.machine().state("CLOSED").is_ok());
        assert!(TcpAdapter.machine().state("LISTEN").is_ok());
        assert!(DccpAdapter.machine().state("CLOSED").is_ok());
        assert!(DccpAdapter.machine().state("LISTEN").is_ok());
    }
}
