//! JSON round-tripping for strategies and proxy reports — the campaign
//! journal stores both so a resumed run can verify it is replaying the same
//! strategy and can rebuild the feedback loop's observation data.

use snake_json::{obj, FromJson, JsonError, ObjExt, ToJson, Value};
use snake_packet::FieldMutation;

use crate::proxy::ProxyReport;
use crate::strategy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, SeqChoice, Strategy, StrategyKind,
};

impl ToJson for Endpoint {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl FromJson for Endpoint {
    fn from_json(value: &Value) -> Result<Endpoint, JsonError> {
        match value.as_str() {
            Some("client") => Ok(Endpoint::Client),
            Some("server") => Ok(Endpoint::Server),
            _ => Err(JsonError::decode(
                "endpoint must be \"client\" or \"server\"",
            )),
        }
    }
}

impl ToJson for SeqChoice {
    fn to_json(&self) -> Value {
        Value::Str(
            match self {
                SeqChoice::Zero => "zero",
                SeqChoice::Random => "random",
                SeqChoice::Max => "max",
            }
            .to_owned(),
        )
    }
}

impl FromJson for SeqChoice {
    fn from_json(value: &Value) -> Result<SeqChoice, JsonError> {
        match value.as_str() {
            Some("zero") => Ok(SeqChoice::Zero),
            Some("random") => Ok(SeqChoice::Random),
            Some("max") => Ok(SeqChoice::Max),
            _ => Err(JsonError::decode("seq must be zero/random/max")),
        }
    }
}

impl ToJson for InjectDirection {
    fn to_json(&self) -> Value {
        Value::Str(
            match self {
                InjectDirection::ToClient => "to-client",
                InjectDirection::ToServer => "to-server",
            }
            .to_owned(),
        )
    }
}

impl FromJson for InjectDirection {
    fn from_json(value: &Value) -> Result<InjectDirection, JsonError> {
        match value.as_str() {
            Some("to-client") => Ok(InjectDirection::ToClient),
            Some("to-server") => Ok(InjectDirection::ToServer),
            _ => Err(JsonError::decode("direction must be to-client/to-server")),
        }
    }
}

impl ToJson for BasicAttack {
    fn to_json(&self) -> Value {
        match self {
            BasicAttack::Drop { percent } => obj([
                ("attack", Value::Str("drop".into())),
                ("percent", Value::U64(u64::from(*percent))),
            ]),
            BasicAttack::Duplicate { copies } => obj([
                ("attack", Value::Str("duplicate".into())),
                ("copies", Value::U64(u64::from(*copies))),
            ]),
            BasicAttack::Delay { secs } => obj([
                ("attack", Value::Str("delay".into())),
                ("secs", Value::F64(*secs)),
            ]),
            BasicAttack::Batch { secs } => obj([
                ("attack", Value::Str("batch".into())),
                ("secs", Value::F64(*secs)),
            ]),
            BasicAttack::Reflect => obj([("attack", Value::Str("reflect".into()))]),
            BasicAttack::Lie { field, mutation } => obj([
                ("attack", Value::Str("lie".into())),
                ("field", Value::Str(field.clone())),
                ("mutation", mutation.to_json()),
            ]),
        }
    }
}

impl FromJson for BasicAttack {
    fn from_json(value: &Value) -> Result<BasicAttack, JsonError> {
        Ok(match value.req_str("attack")? {
            "drop" => {
                let percent = value.req_u64("percent")?;
                BasicAttack::Drop {
                    percent: u8::try_from(percent)
                        .map_err(|_| JsonError::decode("drop percent out of range"))?,
                }
            }
            "duplicate" => {
                let copies = value.req_u64("copies")?;
                BasicAttack::Duplicate {
                    copies: u32::try_from(copies)
                        .map_err(|_| JsonError::decode("duplicate copies out of range"))?,
                }
            }
            "delay" => BasicAttack::Delay {
                secs: value.req_f64("secs")?,
            },
            "batch" => BasicAttack::Batch {
                secs: value.req_f64("secs")?,
            },
            "reflect" => BasicAttack::Reflect,
            "lie" => BasicAttack::Lie {
                field: value.req_str("field")?.to_owned(),
                mutation: FieldMutation::from_json(value.req("mutation")?)?,
            },
            other => return Err(JsonError::decode(format!("unknown basic attack `{other}`"))),
        })
    }
}

impl ToJson for InjectionAttack {
    fn to_json(&self) -> Value {
        match self {
            InjectionAttack::Inject {
                packet_type,
                seq,
                direction,
                repeat,
            } => obj([
                ("attack", Value::Str("inject".into())),
                ("packet_type", Value::Str(packet_type.clone())),
                ("seq", seq.to_json()),
                ("direction", direction.to_json()),
                ("repeat", Value::U64(u64::from(*repeat))),
            ]),
            InjectionAttack::HitSeqWindow {
                packet_type,
                direction,
                stride,
                count,
                rate_pps,
                inert,
            } => obj([
                ("attack", Value::Str("hit_seq_window".into())),
                ("packet_type", Value::Str(packet_type.clone())),
                ("direction", direction.to_json()),
                ("stride", Value::U64(*stride)),
                ("count", Value::U64(*count)),
                ("rate_pps", Value::U64(*rate_pps)),
                ("inert", Value::Bool(*inert)),
            ]),
        }
    }
}

impl FromJson for InjectionAttack {
    fn from_json(value: &Value) -> Result<InjectionAttack, JsonError> {
        Ok(match value.req_str("attack")? {
            "inject" => InjectionAttack::Inject {
                packet_type: value.req_str("packet_type")?.to_owned(),
                seq: SeqChoice::from_json(value.req("seq")?)?,
                direction: InjectDirection::from_json(value.req("direction")?)?,
                repeat: u32::try_from(value.req_u64("repeat")?)
                    .map_err(|_| JsonError::decode("inject repeat out of range"))?,
            },
            "hit_seq_window" => InjectionAttack::HitSeqWindow {
                packet_type: value.req_str("packet_type")?.to_owned(),
                direction: InjectDirection::from_json(value.req("direction")?)?,
                stride: value.req_u64("stride")?,
                count: value.req_u64("count")?,
                rate_pps: value.req_u64("rate_pps")?,
                inert: value.req_bool("inert")?,
            },
            other => {
                return Err(JsonError::decode(format!(
                    "unknown injection attack `{other}`"
                )))
            }
        })
    }
}

impl ToJson for StrategyKind {
    fn to_json(&self) -> Value {
        match self {
            StrategyKind::OnPacket {
                endpoint,
                state,
                packet_type,
                attack,
            } => obj([
                ("kind", Value::Str("on_packet".into())),
                ("endpoint", endpoint.to_json()),
                ("state", Value::Str(state.clone())),
                ("packet_type", Value::Str(packet_type.clone())),
                ("basic", attack.to_json()),
            ]),
            StrategyKind::OnState {
                endpoint,
                state,
                attack,
            } => obj([
                ("kind", Value::Str("on_state".into())),
                ("endpoint", endpoint.to_json()),
                ("state", Value::Str(state.clone())),
                ("injection", attack.to_json()),
            ]),
            StrategyKind::OnNthPacket {
                endpoint,
                n,
                attack,
            } => obj([
                ("kind", Value::Str("on_nth_packet".into())),
                ("endpoint", endpoint.to_json()),
                ("n", Value::U64(*n)),
                ("basic", attack.to_json()),
            ]),
            StrategyKind::AtTime { at_secs, attack } => obj([
                ("kind", Value::Str("at_time".into())),
                ("at_secs", Value::F64(*at_secs)),
                ("injection", attack.to_json()),
            ]),
        }
    }
}

impl FromJson for StrategyKind {
    fn from_json(value: &Value) -> Result<StrategyKind, JsonError> {
        Ok(match value.req_str("kind")? {
            "on_packet" => StrategyKind::OnPacket {
                endpoint: Endpoint::from_json(value.req("endpoint")?)?,
                state: value.req_str("state")?.to_owned(),
                packet_type: value.req_str("packet_type")?.to_owned(),
                attack: BasicAttack::from_json(value.req("basic")?)?,
            },
            "on_state" => StrategyKind::OnState {
                endpoint: Endpoint::from_json(value.req("endpoint")?)?,
                state: value.req_str("state")?.to_owned(),
                attack: InjectionAttack::from_json(value.req("injection")?)?,
            },
            "on_nth_packet" => StrategyKind::OnNthPacket {
                endpoint: Endpoint::from_json(value.req("endpoint")?)?,
                n: value.req_u64("n")?,
                attack: BasicAttack::from_json(value.req("basic")?)?,
            },
            "at_time" => StrategyKind::AtTime {
                at_secs: value.req_f64("at_secs")?,
                attack: InjectionAttack::from_json(value.req("injection")?)?,
            },
            other => {
                return Err(JsonError::decode(format!(
                    "unknown strategy kind `{other}`"
                )))
            }
        })
    }
}

impl ToJson for Strategy {
    fn to_json(&self) -> Value {
        obj([
            ("id", Value::U64(self.id)),
            ("strategy", self.kind.to_json()),
        ])
    }
}

impl FromJson for Strategy {
    fn from_json(value: &Value) -> Result<Strategy, JsonError> {
        Ok(Strategy {
            id: value.req_u64("id")?,
            kind: StrategyKind::from_json(value.req("strategy")?)?,
        })
    }
}

impl ToJson for ProxyReport {
    fn to_json(&self) -> Value {
        let observed: Vec<Value> = self
            .observed
            .iter()
            .map(|(endpoint, state, ptype, direction, n)| {
                Value::Arr(vec![
                    Value::Str(endpoint.clone()),
                    Value::Str(state.clone()),
                    Value::Str(ptype.clone()),
                    Value::Str(direction.clone()),
                    Value::U64(*n),
                ])
            })
            .collect();
        obj([
            ("packets_seen", Value::U64(self.packets_seen)),
            ("matched", Value::U64(self.matched)),
            ("dropped", Value::U64(self.dropped)),
            ("duplicates", Value::U64(self.duplicates)),
            ("delayed", Value::U64(self.delayed)),
            ("batched", Value::U64(self.batched)),
            ("reflected", Value::U64(self.reflected)),
            ("lied", Value::U64(self.lied)),
            ("injected", Value::U64(self.injected)),
            ("effect_fp_a", Value::U64(self.effect_fp_a)),
            ("effect_fp_b", Value::U64(self.effect_fp_b)),
            (
                "rule_hits",
                Value::Arr(
                    self.rule_hits
                        .iter()
                        .map(|(ri, n)| Value::Arr(vec![Value::U64(*ri as u64), Value::U64(*n)]))
                        .collect(),
                ),
            ),
            ("observed", Value::Arr(observed)),
            (
                "client_final_state",
                Value::Str(self.client_final_state.clone()),
            ),
            (
                "server_final_state",
                Value::Str(self.server_final_state.clone()),
            ),
        ])
    }
}

impl FromJson for ProxyReport {
    fn from_json(value: &Value) -> Result<ProxyReport, JsonError> {
        let observed_raw = value
            .req("observed")?
            .as_arr()
            .ok_or_else(|| JsonError::decode("`observed` must be an array"))?;
        let mut observed = Vec::with_capacity(observed_raw.len());
        for entry in observed_raw {
            let tuple = entry
                .as_arr()
                .filter(|t| t.len() == 5)
                .ok_or_else(|| JsonError::decode("observation must be a 5-element array"))?;
            let text = |i: usize| -> Result<String, JsonError> {
                tuple[i]
                    .as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| JsonError::decode("observation label must be a string"))
            };
            let count = tuple[4]
                .as_u64()
                .ok_or_else(|| JsonError::decode("observation count must be an integer"))?;
            observed.push((text(0)?, text(1)?, text(2)?, text(3)?, count));
        }
        Ok(ProxyReport {
            packets_seen: value.req_u64("packets_seen")?,
            matched: value.req_u64("matched")?,
            dropped: value.req_u64("dropped")?,
            duplicates: value.req_u64("duplicates")?,
            delayed: value.req_u64("delayed")?,
            batched: value.req_u64("batched")?,
            reflected: value.req_u64("reflected")?,
            lied: value.req_u64("lied")?,
            injected: value.req_u64("injected")?,
            // Absent in journals written before effect fingerprinting
            // existed; default to the empty fingerprint.
            effect_fp_a: if value.get("effect_fp_a").is_some() {
                value.req_u64("effect_fp_a")?
            } else {
                0
            },
            effect_fp_b: if value.get("effect_fp_b").is_some() {
                value.req_u64("effect_fp_b")?
            } else {
                0
            },
            // Absent in journals written before per-rule hit counting;
            // default to no recorded hits.
            rule_hits: match value.get("rule_hits") {
                Some(raw) => {
                    let entries = raw
                        .as_arr()
                        .ok_or_else(|| JsonError::decode("`rule_hits` must be an array"))?;
                    let mut hits = Vec::with_capacity(entries.len());
                    for entry in entries {
                        let pair = entry.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                            JsonError::decode("rule hit must be a [index, count] pair")
                        })?;
                        let ri = pair[0]
                            .as_u64()
                            .and_then(|v| u32::try_from(v).ok())
                            .ok_or_else(|| JsonError::decode("rule index must fit in u32"))?;
                        let n = pair[1].as_u64().ok_or_else(|| {
                            JsonError::decode("rule hit count must be an integer")
                        })?;
                        hits.push((ri, n));
                    }
                    hits
                }
                None => Vec::new(),
            },
            observed,
            client_final_state: value.req_str("client_final_state")?.to_owned(),
            server_final_state: value.req_str("server_final_state")?.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(strategy: Strategy) {
        let text = strategy.to_json().to_string_compact();
        let back = Strategy::from_json(&snake_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, strategy, "{text}");
    }

    #[test]
    fn every_strategy_kind_roundtrips() {
        roundtrip(Strategy {
            id: 1,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                packet_type: "ACK".into(),
                attack: BasicAttack::Lie {
                    field: "seq".into(),
                    mutation: FieldMutation::Add(25),
                },
            },
        });
        roundtrip(Strategy {
            id: 2,
            kind: StrategyKind::OnState {
                endpoint: Endpoint::Server,
                state: "REQUEST".into(),
                attack: InjectionAttack::Inject {
                    packet_type: "SYNC".into(),
                    seq: SeqChoice::Random,
                    direction: InjectDirection::ToClient,
                    repeat: 3,
                },
            },
        });
        roundtrip(Strategy {
            id: 3,
            kind: StrategyKind::OnNthPacket {
                endpoint: Endpoint::Client,
                n: 17,
                attack: BasicAttack::Drop { percent: 100 },
            },
        });
        roundtrip(Strategy {
            id: 4,
            kind: StrategyKind::AtTime {
                at_secs: 2.5,
                attack: InjectionAttack::HitSeqWindow {
                    packet_type: "RST".into(),
                    direction: InjectDirection::ToServer,
                    stride: 65_535,
                    count: 66_000,
                    rate_pps: 20_000,
                    inert: true,
                },
            },
        });
    }

    #[test]
    fn proxy_report_roundtrips() {
        let report = ProxyReport {
            packets_seen: 10,
            matched: 3,
            dropped: 1,
            duplicates: 0,
            delayed: 0,
            batched: 0,
            reflected: 0,
            lied: 2,
            injected: 5,
            effect_fp_a: 0x1234_5678_9abc_def0,
            effect_fp_b: 0x0fed_cba9_8765_4321,
            rule_hits: vec![(0, 3), (2, 5)],
            observed: vec![(
                "client".into(),
                "ESTABLISHED".into(),
                "ACK".into(),
                "out".into(),
                7,
            )],
            client_final_state: "CLOSED".into(),
            server_final_state: "CLOSE_WAIT".into(),
        };
        let text = report.to_json().to_string_compact();
        let back = ProxyReport::from_json(&snake_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn mismatched_strategy_fields_fail_loud() {
        let v = snake_json::parse(r#"{"id":1,"strategy":{"kind":"on_packet","endpoint":"moon"}}"#)
            .unwrap();
        assert!(Strategy::from_json(&v).is_err());
    }
}
