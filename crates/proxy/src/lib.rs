//! The SNAKE attack proxy.
//!
//! The proxy is spliced into the target client's access link (the paper's
//! modified NS-3 tap-bridge, §V-B) and does three jobs:
//!
//! 1. **State tracking** — a [`PairTracker`](snake_statemachine::PairTracker)
//!    replays every observed packet against the user-supplied protocol
//!    state machine to infer which state each endpoint is in, and collects
//!    per-state statistics the controller uses as feedback.
//! 2. **Basic attacks** — when the active [`Strategy`] matches the sender's
//!    tracked state and the packet's type, the proxy applies one of the
//!    paper's packet-level basic attacks: *drop*, *duplicate*, *delay*,
//!    *batch*, *reflect*, or *lie* (generic field mutation via the header
//!    format spec).
//! 3. **Off-path injection** — *inject* and *hitseqwindow* strategies spoof
//!    packets into the target connection when the tracked endpoint enters
//!    the strategy's state, without reading any connection secrets the
//!    off-path attacker would not know.
//!
//! Protocol specifics (packet classification, header construction, port
//! swapping) are provided by a [`ProtocolAdapter`]; adapters for TCP and
//! DCCP are built in, and a new two-party protocol needs only a new
//! adapter, header spec, and dot machine — exactly the paper's porting
//! story.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod adapter;
mod json;
mod proxy;
mod strategy;

pub use adapter::{DccpAdapter, InjectContext, ProtocolAdapter, TcpAdapter};
pub use proxy::{
    AttackProxy, PacketFirstSeen, ProxyConfig, ProxyReport, StateFirstSeen, StateTimeline,
};
pub use strategy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, SeqChoice, Strategy, StrategyKind,
};
