use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use snake_netsim::{Addr, FxHashMap, NodeId, Packet, SimDuration, SimTime, Tap, TapCtx};
use snake_packet::FormatSpec;
use snake_statemachine::{Dir, PairTracker};

use crate::adapter::{swap_endpoints, InjectContext, ProtocolAdapter};
use crate::strategy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, Strategy, StrategyKind,
};

const TAG_BATCH: u64 = 1;
/// Injection timer tags are `TAG_INJECT_BASE + rule index`, so several
/// concurrent injection rules (combination strategies) keep separate
/// schedules.
const TAG_INJECT_BASE: u64 = 16;

/// Where the proxy sits and what the (off-path) attacker is assumed to
/// know: the service address and a guess at the client's ephemeral port —
/// information the paper's attacker model grants (§III-C), but never the
/// connection's sequence state.
#[derive(Debug, Clone, Copy)]
pub struct ProxyConfig {
    /// The proxied client's node.
    pub client_node: NodeId,
    /// Whether the client is the `a` side of the tapped link.
    pub client_is_a: bool,
    /// The target service address.
    pub server: Addr,
    /// Guessed client ephemeral port (used until real traffic is seen).
    pub client_port_guess: u16,
    /// RNG seed for probabilistic attacks.
    pub seed: u64,
}

/// Counters and state observations the executor extracts after a test and
/// ships to the controller (paper §V-C).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProxyReport {
    /// Target-protocol packets that crossed the proxy.
    pub packets_seen: u64,
    /// Packets matched by the active strategy.
    pub matched: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Duplicate copies emitted.
    pub duplicates: u64,
    /// Packets delayed.
    pub delayed: u64,
    /// Packets batched.
    pub batched: u64,
    /// Packets reflected.
    pub reflected: u64,
    /// Packets with a mutated field.
    pub lied: u64,
    /// Packets injected.
    pub injected: u64,
    /// First lane of the wire-effect fingerprint: a running hash over every
    /// actual effect the active strategy had on the wire (drops, copies,
    /// delays, reflected and mutated bytes, injections), each keyed by the
    /// packet index or injection time it occurred at. A run with no effects
    /// keeps the zero fingerprint, bit-identical to the baseline's; two runs
    /// with equal fingerprints produced the same visible packet stream, so
    /// the campaign can share one verdict between them.
    pub effect_fp_a: u64,
    /// Second, independently keyed fingerprint lane (different rotation and
    /// multiplier), so sharing requires agreement of both lanes — a single
    /// 64-bit collision is not enough to cross-contaminate verdicts.
    pub effect_fp_b: u64,
    /// Effective hits per rule, as sparse `(rule index, count)` pairs
    /// sorted by index. A rule is credited once per wire effect it causes
    /// — the same discipline as `matched`/`injected`, so a run whose rules
    /// never touch the wire keeps an empty vector, bit-identical to the
    /// baseline's (the memo layers substitute baseline reports for
    /// provably effect-free runs). The campaign manifest aggregates these
    /// into per-`(state, packet type)` histograms.
    pub rule_hits: Vec<(u32, u64)>,
    /// Per-(endpoint, state, packet type, direction) observation counts.
    pub observed: Vec<(String, String, String, String, u64)>,
    /// Final tracked client state.
    pub client_final_state: String,
    /// Final tracked server state.
    pub server_final_state: String,
}

/// First-occurrence times of trigger-visible observations in a baseline
/// (no-attack) run, recorded when [`AttackProxy::record_timeline`] is on.
///
/// The snapshot-fork executor uses this to place forks: a strategy's
/// trigger cannot activate before the first time its key appears here, so
/// forking the baseline snapshot strictly before that time yields a run
/// identical to executing the strategy from scratch.
#[derive(Debug, Clone, Default)]
pub struct StateTimeline {
    /// First visibility of each `(endpoint, state)` pair to the `OnState`
    /// trigger check (which runs after every observed packet).
    pub states: FxHashMap<(Endpoint, String), StateFirstSeen>,
    /// Per `(sender endpoint, sender pre-transition state, packet type)`
    /// triple: first sighting by the `OnPacket` match, plus which header
    /// fields held the same value in every packet seen under the triple.
    pub packets: FxHashMap<(Endpoint, String, String), PacketFirstSeen>,
}

/// When an `(endpoint, state)` pair first became trigger-visible in the
/// baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateFirstSeen {
    /// Simulated time of first visibility.
    pub first_at: SimTime,
    /// `packets_seen` count at that moment (disambiguates distinct packets
    /// observed at the same nanosecond).
    pub first_index: u64,
}

/// Baseline observations for one `(sender, pre-transition state, packet
/// type)` triple: first sighting, plus per-field value constancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketFirstSeen {
    /// Simulated time the triple was first seen.
    pub first_at: SimTime,
    /// `packets_seen` count at that moment.
    pub first_index: u64,
    /// For each field of the protocol's header spec (by field index):
    /// `Some(v)` if every packet seen under this triple carried value `v`
    /// in that field, `None` if it varied or could not be read. A lie whose
    /// mutation provably writes the constant value back is a wire no-op on
    /// every packet it could match, so the planner elides the run.
    pub fields: Vec<Option<u64>>,
}

impl PacketFirstSeen {
    /// Folds one packet's field values into the constancy vector.
    fn update_constancy(&mut self, spec: &FormatSpec, header: &[u8]) {
        let n = spec.fields().len();
        if self.fields.is_empty() {
            self.fields.reserve(n);
            for i in 0..n {
                let v = spec.field_at(i).and_then(|(_, r)| spec.get(header, r).ok());
                self.fields.push(v);
            }
            return;
        }
        for i in 0..n {
            let v = spec.field_at(i).and_then(|(_, r)| spec.get(header, r).ok());
            if self.fields[i] != v {
                self.fields[i] = None;
            }
        }
    }
}

/// Hashes a byte slice with the deterministic netsim hasher (for folding
/// packet contents into the effect fingerprint).
fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = snake_netsim::FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[derive(Debug, Clone)]
struct InjectionRun {
    packet_type: String,
    direction: InjectDirection,
    next_seq: u64,
    stride: u64,
    remaining: u64,
    per_tick: u64,
    tick: SimDuration,
    inert: bool,
}

/// The attack proxy: a [`Tap`] that tracks protocol state from observed
/// packets and applies the active [`Strategy`] (or several at once — the
/// *combination strategies* the paper leaves as future work).
#[derive(Debug)]
pub struct AttackProxy {
    adapter: Box<dyn ProtocolAdapter>,
    config: ProxyConfig,
    rules: Vec<Strategy>,
    /// One tracker per connection (keyed by the client-side transport
    /// address pair): concurrent connections through the proxy are tracked
    /// independently, so multi-connection exhaustion scenarios key
    /// strategies correctly per connection.
    trackers: Vec<((Addr, Addr), PairTracker)>,
    by_conn: FxHashMap<(Addr, Addr), usize>,
    rng: SmallRng,
    observed_client: Option<Addr>,
    observed_server: Option<Addr>,
    packets_from_client: u64,
    packets_from_server: u64,
    batch: Vec<(Packet, bool)>,
    batch_armed: bool,
    /// Per-rule injection state (index-aligned with `rules`).
    started: Vec<bool>,
    injections: Vec<Option<InjectionRun>>,
    /// Baseline trigger timeline, recorded only when enabled.
    timeline: Option<StateTimeline>,
    /// When set (see [`AttackProxy::arm_noop_halt`]), the proxy halts the
    /// simulation as soon as every rule is provably dead without having had
    /// any wire effect — the rest of the run is the baseline by definition.
    halt_armed: bool,
    report: ProxyReport,
}

impl Clone for AttackProxy {
    fn clone(&self) -> AttackProxy {
        AttackProxy {
            adapter: self.adapter.clone_adapter(),
            config: self.config,
            rules: self.rules.clone(),
            trackers: self.trackers.clone(),
            by_conn: self.by_conn.clone(),
            rng: self.rng.clone(),
            observed_client: self.observed_client,
            observed_server: self.observed_server,
            packets_from_client: self.packets_from_client,
            packets_from_server: self.packets_from_server,
            batch: self.batch.clone(),
            batch_armed: self.batch_armed,
            started: self.started.clone(),
            injections: self.injections.clone(),
            timeline: self.timeline.clone(),
            halt_armed: self.halt_armed,
            report: self.report.clone(),
        }
    }
}

impl AttackProxy {
    /// Creates a proxy for one test run. Pass `None` as the strategy for
    /// the baseline (observation-only) run.
    pub fn new<A: ProtocolAdapter>(
        adapter: A,
        config: ProxyConfig,
        strategy: Option<Strategy>,
    ) -> AttackProxy {
        AttackProxy::with_rules(adapter, config, strategy.into_iter().collect())
    }

    /// Creates a proxy applying several strategies in the same run — a
    /// combination strategy. `OnPacket` rules are matched in order (first
    /// match wins per packet); every `OnState` rule launches its own
    /// injection when its trigger state is reached.
    pub fn with_rules<A: ProtocolAdapter>(
        adapter: A,
        config: ProxyConfig,
        rules: Vec<Strategy>,
    ) -> AttackProxy {
        let n = rules.len();
        AttackProxy {
            adapter: Box::new(adapter),
            config,
            rules,
            trackers: Vec::new(),
            by_conn: FxHashMap::default(),
            rng: SmallRng::seed_from_u64(config.seed),
            observed_client: None,
            observed_server: None,
            packets_from_client: 0,
            packets_from_server: 0,
            batch: Vec::new(),
            batch_armed: false,
            started: vec![false; n],
            injections: (0..n).map(|_| None).collect(),
            timeline: None,
            halt_armed: false,
            report: ProxyReport::default(),
        }
    }

    /// Replaces the active rule set, resetting per-rule trigger state while
    /// keeping every observation (trackers, counters, report) intact.
    ///
    /// This is how the snapshot-fork executor arms a strategy inside a
    /// forked baseline: the fork already carries the prefix's observations,
    /// and the new rules start matching from the next packet on. It does
    /// *not* re-run [`Tap::on_start`], so `AtTime` rules (armed by a timer
    /// at simulation start) must not be installed this way — the executor
    /// runs those from scratch.
    pub fn install_rules(&mut self, rules: Vec<Strategy>) {
        let n = rules.len();
        self.rules = rules;
        self.started = vec![false; n];
        self.injections = (0..n).map(|_| None).collect();
        self.halt_armed = false;
        // Hit indices refer to the rule set that earned them; a new rule
        // set starts from a clean slate (the baseline prefix a fork carries
        // had no rules, so this is a no-op for the snapshot-fork path).
        self.report.rule_hits.clear();
    }

    /// Arms the no-op short-circuit: once every rule is a spent one-shot
    /// (`OnNthPacket` whose packet number has passed) and the run has had
    /// zero wire effects (`matched == 0 && injected == 0`), the proxy halts
    /// the simulation — the remainder of the run is the baseline, and the
    /// executor substitutes the baseline outcome.
    ///
    /// Only sound when the caller can vouch that (a) an effect-free run
    /// really is the baseline (the planner's determinism guard passed) and
    /// (b) the rules cannot act after going dead — which is why the
    /// executor arms it only for all-`OnNthPacket`-lie rule sets.
    pub fn arm_noop_halt(&mut self) {
        self.halt_armed = true;
    }

    /// Whether every rule is a one-shot whose firing opportunity has
    /// passed. Only meaningful for `OnNthPacket` rule sets (any other kind
    /// keeps the answer `false`, so an armed halt never fires for them).
    fn noop_rules_dead(&self) -> bool {
        self.rules.iter().all(|rule| match &rule.kind {
            StrategyKind::OnNthPacket { endpoint, n, .. } => {
                let sent = match endpoint {
                    Endpoint::Client => self.packets_from_client,
                    Endpoint::Server => self.packets_from_server,
                };
                sent >= *n
            }
            _ => false,
        })
    }

    /// Folds one wire effect into both fingerprint lanes: a category code,
    /// the packet index (or injection time) it happened at, and an
    /// effect-specific detail word. Lanes use different rotations,
    /// pre-whitening, and multipliers, so agreement on both is required
    /// for two runs to be considered effect-identical.
    fn fp_fold_event(&mut self, category: u64, index: u64, detail: u64) {
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        const MULT_A: u64 = 0x517c_c1b7_2722_0a95;
        const MULT_B: u64 = 0x2545_F491_4F6C_DD1D;
        let r = &mut self.report;
        for w in [category, index, detail] {
            r.effect_fp_a = (r.effect_fp_a.rotate_left(5) ^ w).wrapping_mul(MULT_A);
            r.effect_fp_b =
                (r.effect_fp_b.rotate_left(7) ^ w.wrapping_add(GOLDEN)).wrapping_mul(MULT_B);
        }
    }

    /// Enables baseline trigger-timeline recording (off by default; costs
    /// a hash lookup per packet, so only observation runs turn it on).
    pub fn record_timeline(&mut self) {
        self.timeline = Some(StateTimeline::default());
    }

    /// The recorded baseline trigger timeline, if recording was enabled.
    pub fn timeline(&self) -> Option<&StateTimeline> {
        self.timeline.as_ref()
    }

    /// The report accumulated so far (final after the run ends).
    pub fn report(&self) -> &ProxyReport {
        &self.report
    }

    /// The state tracker of the first observed connection (for tests and
    /// diagnostics of single-connection scenarios).
    pub fn tracker(&self) -> &PairTracker {
        &self.trackers.first().expect("no connection observed yet").1
    }

    /// Number of distinct connections the proxy has tracked.
    pub fn connections_tracked(&self) -> usize {
        self.trackers.len()
    }

    /// Gets or creates the tracker for a connection, returning its index.
    fn tracker_index(&mut self, key: (Addr, Addr)) -> usize {
        if let Some(&i) = self.by_conn.get(&key) {
            return i;
        }
        let tracker = PairTracker::new(
            self.adapter.machine(),
            self.adapter.client_initial(),
            self.adapter.server_initial(),
        )
        .expect("adapter initial states exist in its machine");
        let i = self.trackers.len();
        self.trackers.push((key, tracker));
        self.by_conn.insert(key, i);
        i
    }

    fn client_addr(&self) -> Addr {
        self.observed_client.unwrap_or(Addr::new(
            self.config.client_node,
            self.config.client_port_guess,
        ))
    }

    fn server_addr(&self) -> Addr {
        self.observed_server.unwrap_or(self.config.server)
    }

    /// Maps an injection direction onto the tapped link's orientation.
    fn toward_b(&self, direction: InjectDirection) -> bool {
        match direction {
            InjectDirection::ToServer => self.config.client_is_a,
            InjectDirection::ToClient => !self.config.client_is_a,
        }
    }

    fn seq_value(&mut self, choice: crate::strategy::SeqChoice) -> u64 {
        let mask = if self.adapter.seq_bits() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.adapter.seq_bits()) - 1
        };
        match choice {
            crate::strategy::SeqChoice::Zero => 0,
            crate::strategy::SeqChoice::Max => mask,
            crate::strategy::SeqChoice::Random => self.rng.gen::<u64>() & mask,
        }
    }

    /// Starts any not-yet-started injection rule whose trigger endpoint is
    /// now in its trigger state. Runs after every observed packet, so the
    /// non-triggering pass must not allocate or clone.
    fn maybe_trigger_injection(&mut self, ctx: &mut TapCtx<'_>) {
        for i in 0..self.rules.len() {
            if self.started[i] {
                continue;
            }
            let StrategyKind::OnState {
                endpoint, state, ..
            } = &self.rules[i].kind
            else {
                continue;
            };
            let endpoint = *endpoint;
            let in_state = self.trackers.iter().any(|(_, t)| {
                let current = match endpoint {
                    Endpoint::Client => t.client().current_name(),
                    Endpoint::Server => t.server().current_name(),
                };
                current == state.as_str()
            });
            if !in_state {
                continue;
            }
            let attack = match &self.rules[i].kind {
                StrategyKind::OnState { attack, .. } => attack.clone(),
                _ => unreachable!(),
            };
            self.started[i] = true;
            self.injections[i] = Some(self.make_run(attack));
            self.injection_tick(i, ctx);
        }
    }

    /// Builds the paced run for an injection attack.
    fn make_run(&mut self, attack: InjectionAttack) -> InjectionRun {
        match attack {
            InjectionAttack::Inject {
                packet_type,
                seq,
                direction,
                repeat,
            } => {
                let seq0 = self.seq_value(seq);
                InjectionRun {
                    packet_type,
                    direction,
                    next_seq: seq0,
                    stride: 0,
                    remaining: repeat.max(1) as u64,
                    per_tick: 1,
                    tick: SimDuration::from_millis(10),
                    inert: false,
                }
            }
            InjectionAttack::HitSeqWindow {
                packet_type,
                direction,
                stride,
                count,
                rate_pps,
                inert,
            } => InjectionRun {
                packet_type,
                direction,
                next_seq: 0,
                stride,
                remaining: count,
                per_tick: (rate_pps / 100).max(1),
                tick: SimDuration::from_millis(10),
                inert,
            },
        }
    }

    /// Emits one tick's worth of packets for injection rule `i` and
    /// reschedules it.
    fn injection_tick(&mut self, i: usize, ctx: &mut TapCtx<'_>) {
        let rule_index = i;
        let Some(mut run) = self.injections[i].take() else {
            return;
        };
        let burst = run.per_tick.min(run.remaining);
        let mask = if self.adapter.seq_bits() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.adapter.seq_bits()) - 1
        };
        for i in 0..burst {
            let (src, dst) = match run.direction {
                InjectDirection::ToServer => (self.client_addr(), self.server_addr()),
                InjectDirection::ToClient => (self.server_addr(), self.client_addr()),
            };
            let mut dst = dst;
            if run.inert {
                // The false-positive check: identical volume and pacing,
                // but aimed at a dead port so no connection can react.
                dst.port = dst.port.wrapping_add(7_777);
            }
            let ictx = InjectContext {
                src,
                dst,
                seq: run.next_seq,
            };
            if let Some(pkt) = self.adapter.build_inject(&run.packet_type, ictx) {
                let toward_b = self.toward_b(run.direction);
                // Spread the burst inside the tick to avoid a single
                // line-rate spike.
                let spread = SimDuration::from_micros(i * 100);
                let header_hash = fx_hash_bytes(&pkt.header);
                ctx.inject(pkt, toward_b, spread);
                self.report.injected += 1;
                self.bump_rule_hit(rule_index);
                self.fp_fold_event(
                    7,
                    (ctx.now() + spread).as_nanos(),
                    header_hash ^ toward_b as u64,
                );
            }
            run.next_seq = (run.next_seq.wrapping_add(run.stride.max(1))) & mask;
            run.remaining -= 1;
        }
        if run.remaining > 0 {
            ctx.set_timer(run.tick, TAG_INJECT_BASE + i as u64);
            self.injections[i] = Some(run);
        }
    }

    /// Credits rule `ri` with one effective (wire-visible) hit.
    fn bump_rule_hit(&mut self, ri: usize) {
        let ri = ri as u32;
        match self.report.rule_hits.binary_search_by_key(&ri, |e| e.0) {
            Ok(pos) => self.report.rule_hits[pos].1 += 1,
            Err(pos) => self.report.rule_hits.insert(pos, (ri, 1)),
        }
    }

    /// Counts one matched packet against rule `ri`.
    fn count_match(&mut self, ri: usize) {
        self.report.matched += 1;
        self.bump_rule_hit(ri);
    }

    fn apply_basic(
        &mut self,
        ctx: &mut TapCtx<'_>,
        ri: usize,
        attack: &BasicAttack,
        mut packet: Packet,
        toward_b: bool,
    ) {
        // Fingerprint folds key each effect to the index of the packet it
        // hit (`packets_seen` was already incremented for this packet).
        let idx = self.report.packets_seen;
        match attack {
            BasicAttack::Drop { percent } => {
                self.count_match(ri);
                let hit = self.rng.gen_range(0u32..100) < *percent as u32;
                self.fp_fold_event(1, idx, hit as u64);
                if hit {
                    self.report.dropped += 1;
                } else {
                    ctx.forward(packet, toward_b);
                }
            }
            BasicAttack::Duplicate { copies } => {
                self.count_match(ri);
                self.fp_fold_event(2, idx, *copies as u64);
                for _ in 0..*copies {
                    ctx.forward(packet.clone(), toward_b);
                    self.report.duplicates += 1;
                }
                ctx.forward(packet, toward_b);
            }
            BasicAttack::Delay { secs } => {
                self.count_match(ri);
                self.report.delayed += 1;
                self.fp_fold_event(3, idx, secs.to_bits());
                ctx.forward_delayed(packet, toward_b, SimDuration::from_secs_f64(*secs));
            }
            BasicAttack::Batch { secs } => {
                self.count_match(ri);
                self.report.batched += 1;
                self.fp_fold_event(4, idx, secs.to_bits());
                self.batch.push((packet, toward_b));
                if !self.batch_armed {
                    self.batch_armed = true;
                    ctx.set_timer(SimDuration::from_secs_f64(*secs), TAG_BATCH);
                }
            }
            BasicAttack::Reflect => {
                self.count_match(ri);
                self.report.reflected += 1;
                swap_endpoints(&self.adapter.spec(), &mut packet);
                self.fp_fold_event(5, idx, fx_hash_bytes(&packet.header));
                ctx.send_back(packet, toward_b);
            }
            BasicAttack::Lie { field, mutation } => {
                // A lie that leaves the header byte-identical — the mutation
                // wrote the value the field already held, the header failed
                // to parse, or the mutation was out of range — is a wire
                // no-op: forward the original bytes untouched and count
                // nothing, so an all-no-op run's report (fingerprint
                // included) stays bit-identical to the baseline's.
                let spec = self.adapter.spec();
                let original = packet.header.clone();
                let mut changed = false;
                match spec.parse(std::mem::take(&mut packet.header).into_vec()) {
                    Ok(mut header) => {
                        if mutation.apply(&mut header, field, &mut self.rng).is_ok() {
                            let bytes = header.into_bytes();
                            changed = bytes[..] != original[..];
                            packet.header = bytes.into();
                        } else {
                            packet.header = original;
                        }
                    }
                    Err(_) => packet.header = original,
                }
                if changed {
                    self.count_match(ri);
                    self.report.lied += 1;
                    self.fp_fold_event(6, idx, fx_hash_bytes(&packet.header));
                }
                ctx.forward(packet, toward_b);
            }
        }
    }
}

impl Tap for AttackProxy {
    fn boxed_clone(&self) -> Option<Box<dyn snake_netsim::Tap>> {
        Some(Box::new(self.clone()))
    }

    fn on_start(&mut self, ctx: &mut TapCtx<'_>) {
        // Time-interval baseline rules are armed against the wall clock.
        for (i, rule) in self.rules.iter().enumerate() {
            if let StrategyKind::AtTime { at_secs, .. } = &rule.kind {
                ctx.set_timer(
                    SimDuration::from_secs_f64(*at_secs),
                    TAG_INJECT_BASE + i as u64,
                );
            }
        }
        // Strategies keyed to an initial state (CLOSED / LISTEN) trigger
        // before any packet flows.
        self.maybe_trigger_injection(ctx);
    }

    fn on_packet(&mut self, ctx: &mut TapCtx<'_>, packet: Packet, toward_b: bool) {
        if packet.protocol != self.adapter.protocol() {
            // "Protocols not of interest are returned ... for normal
            // processing" (§V-B).
            ctx.forward(packet, toward_b);
            return;
        }
        let Some(ptype) = self.adapter.classify(&packet.header, packet.payload_len) else {
            ctx.forward(packet, toward_b);
            return;
        };
        self.report.packets_seen += 1;

        let from_client = toward_b == self.config.client_is_a;
        if from_client {
            self.observed_client = Some(packet.src);
            self.observed_server = Some(packet.dst);
            self.packets_from_client += 1;
        } else {
            self.observed_client = Some(packet.dst);
            self.observed_server = Some(packet.src);
            self.packets_from_server += 1;
        }
        let sender_count = if from_client {
            self.packets_from_client
        } else {
            self.packets_from_server
        };

        // The strategy keys on the *sender's* state at the moment the
        // packet was sent — i.e. before this packet's own transition —
        // tracked per connection.
        let key = if from_client {
            (packet.src, packet.dst)
        } else {
            (packet.dst, packet.src)
        };
        let idx = self.tracker_index(key);
        let sender = if from_client {
            Endpoint::Client
        } else {
            Endpoint::Server
        };
        // Rule matching is pure, so it runs against the borrowed state name
        // before the observe step — no per-packet String clone; the match
        // yields the rule's index, not a clone of its attack.
        let matched = {
            let tracker = &self.trackers[idx].1;
            let sender_state = match sender {
                Endpoint::Client => tracker.client().current_name(),
                Endpoint::Server => tracker.server().current_name(),
            };
            if let Some(tl) = self.timeline.as_mut() {
                let now = ctx.now();
                let index = self.report.packets_seen;
                let spec = self.adapter.spec();
                tl.packets
                    .entry((sender, sender_state.to_owned(), ptype.to_owned()))
                    .or_insert_with(|| PacketFirstSeen {
                        first_at: now,
                        first_index: index,
                        fields: Vec::new(),
                    })
                    .update_constancy(&spec, &packet.header);
            }
            self.rules.iter().position(|rule| match &rule.kind {
                StrategyKind::OnPacket {
                    endpoint,
                    state,
                    packet_type,
                    ..
                } => {
                    *endpoint == sender
                        && state.as_str() == sender_state
                        && packet_type.as_str() == ptype
                }
                StrategyKind::OnNthPacket { endpoint, n, .. } => {
                    *endpoint == sender && *n == sender_count
                }
                _ => false,
            })
        };
        self.trackers[idx]
            .1
            .observe_packet(from_client, ptype, ctx.now().as_nanos());
        self.maybe_trigger_injection(ctx);
        if let Some(tl) = self.timeline.as_mut() {
            // The OnState trigger check sees post-transition states; record
            // first visibility for both endpoints of this connection.
            let tracker = &self.trackers[idx].1;
            let now = ctx.now();
            let index = self.report.packets_seen;
            for (endpoint, t) in [
                (Endpoint::Client, tracker.client()),
                (Endpoint::Server, tracker.server()),
            ] {
                tl.states
                    .entry((endpoint, t.current_name().to_owned()))
                    .or_insert(StateFirstSeen {
                        first_at: now,
                        first_index: index,
                    });
            }
        }
        match matched {
            Some(ri) => {
                // Move the rule set aside to borrow the matched attack
                // across the `&mut self` call — no per-packet clone of the
                // rule or its attack (`apply_basic` never touches rules).
                let rules = std::mem::take(&mut self.rules);
                match &rules[ri].kind {
                    StrategyKind::OnPacket { attack, .. }
                    | StrategyKind::OnNthPacket { attack, .. } => {
                        self.apply_basic(ctx, ri, attack, packet, toward_b);
                    }
                    _ => unreachable!("matcher only yields packet-triggered rules"),
                }
                self.rules = rules;
            }
            None => ctx.forward(packet, toward_b),
        }
        if self.halt_armed
            && self.report.matched == 0
            && self.report.injected == 0
            && self.noop_rules_dead()
        {
            // Every rule is a spent one-shot and none of them touched the
            // wire: the rest of this run is the baseline. Stop simulating;
            // the executor substitutes the baseline outcome.
            self.halt_armed = false;
            ctx.request_halt();
        }
    }

    fn on_timer(&mut self, ctx: &mut TapCtx<'_>, tag: u64) {
        match tag {
            TAG_BATCH => {
                self.batch_armed = false;
                for (pkt, toward_b) in std::mem::take(&mut self.batch) {
                    ctx.forward(pkt, toward_b);
                }
            }
            t if t >= TAG_INJECT_BASE => {
                let i = (t - TAG_INJECT_BASE) as usize;
                if !self.started[i] {
                    // Move the rule set aside instead of cloning the whole
                    // strategy; only the injection attack itself is cloned
                    // (once per rule, when it first arms).
                    let rules = std::mem::take(&mut self.rules);
                    if let Some(Strategy {
                        kind: StrategyKind::AtTime { attack, .. },
                        ..
                    }) = rules.get(i)
                    {
                        self.started[i] = true;
                        self.injections[i] = Some(self.make_run(attack.clone()));
                    }
                    self.rules = rules;
                }
                self.injection_tick(i, ctx)
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        // Aggregate observations across every tracked connection.
        let mut totals: FxHashMap<(String, String, String, &'static str), u64> =
            FxHashMap::default();
        for (_, tracker) in &mut self.trackers {
            tracker.finish(now.as_nanos());
        }
        for (_, tracker) in &self.trackers {
            for (endpoint, t) in [("client", tracker.client()), ("server", tracker.server())] {
                for (state, ptype, dir, count) in t.observed_pairs() {
                    let dir = match dir {
                        Dir::Send => "send",
                        Dir::Recv => "recv",
                    };
                    *totals
                        .entry((endpoint.to_owned(), state, ptype, dir))
                        .or_insert(0) += count;
                }
            }
        }
        self.report.observed.clear();
        let mut entries: Vec<_> = totals.into_iter().collect();
        entries.sort();
        for ((endpoint, state, ptype, dir), count) in entries {
            self.report
                .observed
                .push((endpoint, state, ptype, dir.to_owned(), count));
        }
        if let Some((_, tracker)) = self.trackers.first() {
            self.report.client_final_state = tracker.client().current_name().to_owned();
            self.report.server_final_state = tracker.server().current_name().to_owned();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::TcpAdapter;
    use crate::strategy::SeqChoice;
    use snake_netsim::{Dumbbell, DumbbellSpec, Simulator};
    use snake_tcp::{Profile, ServerApp, TcpHost};

    fn config(d: &Dumbbell) -> ProxyConfig {
        ProxyConfig {
            client_node: d.client1,
            client_is_a: true,
            server: Addr::new(d.server1, 80),
            client_port_guess: 40_000,
            seed: 99,
        }
    }

    fn tcp_download(strategy: Option<Strategy>, secs: u64) -> (Simulator, Dumbbell) {
        let mut sim = Simulator::new(5);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        let mut s1 = TcpHost::new(Profile::linux_3_13());
        s1.listen(80, ServerApp::bulk_sender(u64::MAX));
        sim.set_agent(d.server1, s1);
        let mut c1 = TcpHost::new(Profile::linux_3_13());
        c1.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
        sim.set_agent(d.client1, c1);
        let proxy = AttackProxy::new(TcpAdapter, config(&d), strategy);
        sim.attach_tap(d.proxy_link, proxy);
        sim.run_until(SimTime::from_secs(secs));
        (sim, d)
    }

    #[test]
    fn baseline_proxy_is_transparent_and_tracks() {
        let (sim, d) = tcp_download(None, 5);
        let delivered = sim.agent::<TcpHost>(d.client1).unwrap().total_delivered();
        assert!(
            delivered > 2_000_000,
            "proxy must not impede traffic: {delivered}"
        );
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert_eq!(proxy.tracker().client().current_name(), "ESTABLISHED");
        assert_eq!(proxy.tracker().server().current_name(), "ESTABLISHED");
        assert!(proxy.report().packets_seen > 1_000);
        assert_eq!(proxy.report().matched, 0);
    }

    #[test]
    fn report_contains_observed_pairs_after_finish() {
        let (sim, d) = tcp_download(None, 3);
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        let report = proxy.report();
        assert!(report.observed.iter().any(|(e, s, p, dir, _)| e == "client"
            && s == "CLOSED"
            && p == "SYN"
            && dir == "send"));
        assert!(report
            .observed
            .iter()
            .any(|(e, s, p, _, n)| e == "server" && s == "ESTABLISHED" && p == "DATA" && *n > 100));
        assert_eq!(report.client_final_state, "ESTABLISHED");
    }

    #[test]
    fn drop_strategy_blocks_handshake() {
        // The server sends its SYN+ACK (and every retransmission of it)
        // while tracked in SYN_RECEIVED; dropping there prevents
        // connection establishment entirely. Note that dropping SYNs in
        // CLOSED would only delay the handshake — the client's
        // retransmissions happen in SYN_SENT — which is exactly the
        // semantic deduplication state-keyed strategies buy.
        let strategy = Strategy {
            id: 1,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Server,
                state: "SYN_RECEIVED".into(),
                packet_type: "SYN+ACK".into(),
                attack: BasicAttack::Drop { percent: 100 },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 5);
        let delivered = sim.agent::<TcpHost>(d.client1).unwrap().total_delivered();
        assert_eq!(delivered, 0, "no data without a handshake");
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert!(proxy.report().dropped >= 1);
    }

    #[test]
    fn strategy_only_matches_its_state_and_type() {
        // Dropping DATA in SYN_SENT matches nothing: the server never
        // sends data while the client is tracked in SYN_SENT.
        let strategy = Strategy {
            id: 2,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Server,
                state: "LISTEN".into(),
                packet_type: "DATA".into(),
                attack: BasicAttack::Drop { percent: 100 },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 5);
        let delivered = sim.agent::<TcpHost>(d.client1).unwrap().total_delivered();
        assert!(delivered > 2_000_000);
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert_eq!(proxy.report().matched, 0);
    }

    #[test]
    fn reflect_syn_causes_simultaneous_open() {
        // The paper's reflect example: answering the client's SYN with its
        // own SYN drives the client into SYN_RECEIVED (simultaneous open)
        // and the connection never transfers data.
        let strategy = Strategy {
            id: 3,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "CLOSED".into(),
                packet_type: "SYN".into(),
                attack: BasicAttack::Reflect,
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 5);
        let delivered = sim.agent::<TcpHost>(d.client1).unwrap().total_delivered();
        assert_eq!(delivered, 0);
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert!(proxy.report().reflected >= 1);
    }

    #[test]
    fn lie_on_window_field_stalls_transfer() {
        // Zeroing the client's advertised window is a flow-control attack:
        // the server can never send.
        let strategy = Strategy {
            id: 4,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                packet_type: "ACK".into(),
                attack: BasicAttack::Lie {
                    field: "window".into(),
                    mutation: snake_packet::FieldMutation::Min,
                },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 10);
        let baseline = {
            let (sim_b, d_b) = tcp_download(None, 10);
            sim_b
                .agent::<TcpHost>(d_b.client1)
                .unwrap()
                .total_delivered()
        };
        let attacked = sim.agent::<TcpHost>(d.client1).unwrap().total_delivered();
        assert!(
            (attacked as f64) < baseline as f64 * 0.5,
            "zero-window lie must throttle: {attacked} vs baseline {baseline}"
        );
    }

    #[test]
    fn hitseqwindow_rst_kills_connection() {
        // The brute-force Reset attack: RSTs at window-sized strides
        // across the whole 32-bit space; one must land in-window.
        let strategy = Strategy {
            id: 5,
            kind: StrategyKind::OnState {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                attack: InjectionAttack::HitSeqWindow {
                    packet_type: "RST".into(),
                    direction: InjectDirection::ToClient,
                    stride: 65_535,
                    count: 65_537,
                    rate_pps: 20_000,
                    inert: false,
                },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 15);
        let metrics = sim.agent::<TcpHost>(d.client1).unwrap().conn_metrics();
        assert_eq!(
            metrics[0].state,
            snake_tcp::State::Closed,
            "a sequence-valid RST must reset the connection"
        );
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert!(proxy.report().injected > 1_000);
    }

    #[test]
    fn inert_hitseqwindow_does_not_reset() {
        let strategy = Strategy {
            id: 6,
            kind: StrategyKind::OnState {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                attack: InjectionAttack::HitSeqWindow {
                    packet_type: "RST".into(),
                    direction: InjectDirection::ToClient,
                    stride: 65_535,
                    count: 65_537,
                    rate_pps: 20_000,
                    inert: true,
                },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 15);
        let metrics = sim.agent::<TcpHost>(d.client1).unwrap().conn_metrics();
        assert_eq!(
            metrics[0].state,
            snake_tcp::State::Established,
            "inert volume has no effect"
        );
    }

    #[test]
    fn single_random_inject_rarely_lands() {
        let strategy = Strategy {
            id: 7,
            kind: StrategyKind::OnState {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                attack: InjectionAttack::Inject {
                    packet_type: "RST".into(),
                    seq: SeqChoice::Random,
                    direction: InjectDirection::ToClient,
                    repeat: 3,
                },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 5);
        let metrics = sim.agent::<TcpHost>(d.client1).unwrap().conn_metrics();
        // 3 random 32-bit guesses against a 64 KiB window: ~0.005% odds.
        assert_eq!(metrics[0].state, snake_tcp::State::Established);
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert_eq!(proxy.report().injected, 3);
    }

    #[test]
    fn duplicate_strategy_emits_copies() {
        let strategy = Strategy {
            id: 8,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                packet_type: "ACK".into(),
                attack: BasicAttack::Duplicate { copies: 2 },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 5);
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert!(proxy.report().duplicates > 100);
        assert_eq!(proxy.report().duplicates, proxy.report().matched * 2);
    }

    #[test]
    fn nth_packet_baseline_attacks_exactly_one_packet() {
        // The send-packet-based injection model (§IV-B): attack only the
        // 5th packet the client sends (its handshake-final ACK or an early
        // data ack) — one match, regardless of state.
        let strategy = Strategy {
            id: 20,
            kind: StrategyKind::OnNthPacket {
                endpoint: Endpoint::Client,
                n: 5,
                attack: BasicAttack::Drop { percent: 100 },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 5);
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert_eq!(proxy.report().matched, 1, "exactly one packet matched");
        assert_eq!(proxy.report().dropped, 1);
        // A single dropped ack does not hurt a healthy connection.
        let delivered = sim.agent::<TcpHost>(d.client1).unwrap().total_delivered();
        assert!(delivered > 1_000_000);
    }

    #[test]
    fn at_time_baseline_injects_at_offset() {
        // The time-interval-based injection model (§IV-B): a blind RST at
        // t = 2 s. A random 32-bit sequence guess virtually never lands.
        let strategy = Strategy {
            id: 21,
            kind: StrategyKind::AtTime {
                at_secs: 2.0,
                attack: InjectionAttack::Inject {
                    packet_type: "RST".into(),
                    seq: SeqChoice::Random,
                    direction: InjectDirection::ToClient,
                    repeat: 3,
                },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 5);
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert_eq!(proxy.report().injected, 3);
        let metrics = sim.agent::<TcpHost>(d.client1).unwrap().conn_metrics();
        assert_eq!(metrics[0].state, snake_tcp::State::Established);
    }

    #[test]
    fn combination_rules_apply_independently() {
        // Two OnPacket rules active at once: duplicate client acks AND
        // drop the server's PSH+ACK segments.
        let rules = vec![
            Strategy {
                id: 30,
                kind: StrategyKind::OnPacket {
                    endpoint: Endpoint::Client,
                    state: "ESTABLISHED".into(),
                    packet_type: "ACK".into(),
                    attack: BasicAttack::Duplicate { copies: 1 },
                },
            },
            Strategy {
                id: 31,
                kind: StrategyKind::OnPacket {
                    endpoint: Endpoint::Server,
                    state: "ESTABLISHED".into(),
                    packet_type: "PSH+ACK".into(),
                    attack: BasicAttack::Drop { percent: 100 },
                },
            },
        ];
        let mut sim = Simulator::new(5);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        let mut s1 = TcpHost::new(Profile::linux_3_13());
        s1.listen(80, ServerApp::bulk_sender(u64::MAX));
        sim.set_agent(d.server1, s1);
        let mut c1 = TcpHost::new(Profile::linux_3_13());
        c1.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
        sim.set_agent(d.client1, c1);
        sim.attach_tap(
            d.proxy_link,
            AttackProxy::with_rules(TcpAdapter, config(&d), rules),
        );
        sim.run_until(SimTime::from_secs(5));
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert!(proxy.report().duplicates > 0, "rule 1 acted");
        assert!(proxy.report().dropped > 0, "rule 2 acted");
    }

    #[test]
    fn concurrent_connections_are_tracked_independently() {
        // Two overlapping downloads through the proxy: each gets its own
        // tracker, and both end tracked in ESTABLISHED.
        let mut sim = Simulator::new(5);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        let mut s1 = TcpHost::new(Profile::linux_3_13());
        s1.listen(80, ServerApp::bulk_sender(u64::MAX));
        sim.set_agent(d.server1, s1);
        let mut c1 = TcpHost::new(Profile::linux_3_13());
        c1.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
        c1.connect_at(SimTime::from_millis(500), Addr::new(d.server1, 80));
        sim.set_agent(d.client1, c1);
        sim.attach_tap(d.proxy_link, AttackProxy::new(TcpAdapter, config(&d), None));
        sim.run_until(SimTime::from_secs(5));
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert_eq!(proxy.connections_tracked(), 2);
        assert_eq!(proxy.tracker().client().current_name(), "ESTABLISHED");
        // Both connections transferred data.
        let metrics = sim.agent::<TcpHost>(d.client1).unwrap().conn_metrics();
        assert_eq!(metrics.len(), 2);
        assert!(metrics.iter().all(|m| m.delivered > 100_000));
    }

    #[test]
    fn batch_strategy_preserves_packets() {
        let strategy = Strategy {
            id: 9,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Server,
                state: "ESTABLISHED".into(),
                packet_type: "DATA".into(),
                attack: BasicAttack::Batch { secs: 0.5 },
            },
        };
        let (sim, d) = tcp_download(Some(strategy), 10);
        let delivered = sim.agent::<TcpHost>(d.client1).unwrap().total_delivered();
        assert!(delivered > 0, "batched packets are released, not lost");
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert!(proxy.report().batched > 0);
    }
}
