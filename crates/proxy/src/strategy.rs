use snake_packet::FieldMutation;

/// Which endpoint of the target connection a strategy element refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The client (the proxied host — in the paper's topology, client 1).
    Client,
    /// The server the proxied client talks to.
    Server,
}

impl Endpoint {
    /// The other endpoint.
    pub fn peer(self) -> Endpoint {
        match self {
            Endpoint::Client => Endpoint::Server,
            Endpoint::Server => Endpoint::Client,
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Client => f.write_str("client"),
            Endpoint::Server => f.write_str("server"),
        }
    }
}

/// The packet-level basic attacks of paper §IV-C, applied to packets of one
/// type observed while their sender is in one state.
#[derive(Debug, Clone, PartialEq)]
pub enum BasicAttack {
    /// Drop the packet with the given probability (percent).
    Drop {
        /// Drop probability in percent (1–100).
        percent: u8,
    },
    /// Forward the packet plus `copies` duplicates.
    Duplicate {
        /// Number of extra copies to inject.
        copies: u32,
    },
    /// Forward the packet after an extra delay.
    Delay {
        /// Delay in seconds.
        secs: f64,
    },
    /// Buffer matching packets and release them together every `secs`
    /// (the Shrew/Induced-Shrew building block).
    Batch {
        /// Batching interval in seconds.
        secs: f64,
    },
    /// Send the packet back to its originating host (with addresses and
    /// ports swapped so the victim processes it).
    Reflect,
    /// Modify one header field before forwarding.
    Lie {
        /// Field name from the protocol's header spec.
        field: String,
        /// The mutation to apply.
        mutation: FieldMutation,
    },
}

impl BasicAttack {
    /// A short stable label for reports.
    pub fn label(&self) -> String {
        match self {
            BasicAttack::Drop { percent } => format!("drop={percent}%"),
            BasicAttack::Duplicate { copies } => format!("dup={copies}"),
            BasicAttack::Delay { secs } => format!("delay={secs}s"),
            BasicAttack::Batch { secs } => format!("batch={secs}s"),
            BasicAttack::Reflect => "reflect".to_owned(),
            BasicAttack::Lie { field, mutation } => format!("lie:{field}:{mutation}"),
        }
    }
}

/// How the sequence field of an injected packet is chosen. Off-path
/// attackers do not know the connection's sequence numbers, so the choices
/// are blind (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeqChoice {
    /// Zero.
    Zero,
    /// A uniformly random value.
    Random,
    /// The field's maximum value.
    Max,
}

impl std::fmt::Display for SeqChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeqChoice::Zero => f.write_str("0"),
            SeqChoice::Random => f.write_str("rand"),
            SeqChoice::Max => f.write_str("max"),
        }
    }
}

/// Which way an injected packet travels (it is spoofed to look like it came
/// from the opposite endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectDirection {
    /// Toward the client, spoofed as the server.
    ToClient,
    /// Toward the server, spoofed as the client.
    ToServer,
}

impl std::fmt::Display for InjectDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectDirection::ToClient => f.write_str("->client"),
            InjectDirection::ToServer => f.write_str("->server"),
        }
    }
}

/// The off-path attacks of paper §IV-C: spoofed packet injection.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectionAttack {
    /// Inject a single spoofed packet (repeated a few times for loss
    /// robustness) when the tracked endpoint enters the strategy's state.
    Inject {
        /// Packet-type label to fabricate (for example `"RST"` or
        /// `"REQUEST"`).
        packet_type: String,
        /// Sequence-field choice.
        seq: SeqChoice,
        /// Direction of travel.
        direction: InjectDirection,
        /// Number of copies, spaced 10 ms apart.
        repeat: u32,
    },
    /// Inject a whole series of packets with sequence numbers spanning the
    /// sequence space at window-sized strides — the brute-force building
    /// block behind the Reset and SYN-Reset attacks.
    HitSeqWindow {
        /// Packet-type label to fabricate.
        packet_type: String,
        /// Direction of travel.
        direction: InjectDirection,
        /// Stride between consecutive sequence numbers (the assumed
        /// receive-window size).
        stride: u64,
        /// Total packets to inject.
        count: u64,
        /// Injection rate, packets per second.
        rate_pps: u64,
        /// Inert variant used by the false-positive check: same volume and
        /// pacing, but aimed at a dead port so it can have no protocol
        /// effect (automates the paper's manual pcap inspection, §VI-A).
        inert: bool,
    },
}

impl InjectionAttack {
    /// A short stable label for reports.
    pub fn label(&self) -> String {
        match self {
            InjectionAttack::Inject {
                packet_type,
                seq,
                direction,
                repeat,
            } => {
                format!("inject:{packet_type}:seq={seq}{direction}x{repeat}")
            }
            InjectionAttack::HitSeqWindow {
                packet_type,
                direction,
                stride,
                count,
                inert,
                ..
            } => {
                let tag = if *inert { ":inert" } else { "" };
                format!("hitseqwindow:{packet_type}{direction}:stride={stride}:n={count}{tag}")
            }
        }
    }
}

/// When and what the proxy attacks.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyKind {
    /// Apply a basic attack to every packet of `packet_type` sent by
    /// `endpoint` while the tracker says that endpoint is in `state` —
    /// SNAKE's protocol-state-aware injection.
    OnPacket {
        /// Whose packets to attack.
        endpoint: Endpoint,
        /// The sender's tracked state.
        state: String,
        /// Packet-type label.
        packet_type: String,
        /// The basic attack to apply.
        attack: BasicAttack,
    },
    /// Launch an injection when `endpoint` is first tracked in `state`.
    OnState {
        /// Whose state machine triggers the injection.
        endpoint: Endpoint,
        /// The tracked state that triggers it.
        state: String,
        /// The injection to launch.
        attack: InjectionAttack,
    },
    /// Baseline model (§IV-B, *send-packet-based attack injection*): apply
    /// a basic attack to exactly the `n`-th packet `endpoint` sends,
    /// counting from 1, regardless of protocol state. Implemented so the
    /// search-space comparison can be run empirically, not just costed.
    OnNthPacket {
        /// Whose packets are counted.
        endpoint: Endpoint,
        /// Which single packet (1-based) to attack.
        n: u64,
        /// The basic attack to apply to that packet.
        attack: BasicAttack,
    },
    /// Baseline model (§IV-B, *time-interval-based attack injection*):
    /// launch an injection at a fixed offset from emulation start,
    /// regardless of protocol state.
    AtTime {
        /// Seconds from simulation start.
        at_secs: f64,
        /// The injection to launch.
        attack: InjectionAttack,
    },
}

/// One attack strategy: the unit SNAKE's controller generates and an
/// executor tests in a fresh scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    /// Stable identifier assigned by the controller.
    pub id: u64,
    /// What to do and when.
    pub kind: StrategyKind,
}

impl Strategy {
    /// A human-readable one-line description.
    pub fn describe(&self) -> String {
        match &self.kind {
            StrategyKind::OnPacket {
                endpoint,
                state,
                packet_type,
                attack,
            } => {
                format!(
                    "[{}] {endpoint}@{state}/{packet_type}: {}",
                    self.id,
                    attack.label()
                )
            }
            StrategyKind::OnState {
                endpoint,
                state,
                attack,
            } => {
                format!("[{}] {endpoint}@{state}: {}", self.id, attack.label())
            }
            StrategyKind::OnNthPacket {
                endpoint,
                n,
                attack,
            } => {
                format!("[{}] {endpoint}#pkt{}: {}", self.id, n, attack.label())
            }
            StrategyKind::AtTime { at_secs, attack } => {
                format!("[{}] t={at_secs}s: {}", self.id, attack.label())
            }
        }
    }

    /// Whether this strategy only injects traffic (models a third-party,
    /// off-path attacker).
    pub fn is_off_path(&self) -> bool {
        matches!(
            self.kind,
            StrategyKind::OnState { .. } | StrategyKind::AtTime { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(BasicAttack::Drop { percent: 50 }.label(), "drop=50%");
        assert_eq!(BasicAttack::Duplicate { copies: 10 }.label(), "dup=10");
        assert_eq!(
            BasicAttack::Lie {
                field: "window".into(),
                mutation: FieldMutation::Max
            }
            .label(),
            "lie:window:max"
        );
        let h = InjectionAttack::HitSeqWindow {
            packet_type: "RST".into(),
            direction: InjectDirection::ToClient,
            stride: 65_535,
            count: 65_537,
            rate_pps: 8_000,
            inert: false,
        };
        assert!(h.label().contains("hitseqwindow:RST"));
    }

    #[test]
    fn describe_includes_state_and_type() {
        let s = Strategy {
            id: 7,
            kind: StrategyKind::OnPacket {
                endpoint: Endpoint::Client,
                state: "ESTABLISHED".into(),
                packet_type: "ACK".into(),
                attack: BasicAttack::Duplicate { copies: 2 },
            },
        };
        let d = s.describe();
        assert!(d.contains("ESTABLISHED"));
        assert!(d.contains("ACK"));
        assert!(d.contains("dup=2"));
        assert!(!s.is_off_path());
    }

    #[test]
    fn injections_are_off_path() {
        let s = Strategy {
            id: 1,
            kind: StrategyKind::OnState {
                endpoint: Endpoint::Client,
                state: "REQUEST".into(),
                attack: InjectionAttack::Inject {
                    packet_type: "SYNC".into(),
                    seq: SeqChoice::Random,
                    direction: InjectDirection::ToClient,
                    repeat: 3,
                },
            },
        };
        assert!(s.is_off_path());
    }

    #[test]
    fn endpoint_peer() {
        assert_eq!(Endpoint::Client.peer(), Endpoint::Server);
        assert_eq!(Endpoint::Server.peer(), Endpoint::Client);
    }
}
