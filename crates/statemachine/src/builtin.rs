//! Built-in state machine descriptions for TCP and DCCP.
//!
//! Both are written in the same dot language a user would supply for a new
//! protocol, exactly as the paper prescribes: "The use of a standardized
//! graph language like dot to represent the state machine enables the use of
//! SNAKE on a variety of two-party protocols simply by swapping out the
//! state machine and packet header descriptions."

use std::sync::Arc;

use crate::{parse_dot, StateMachine};

/// The 11-state TCP connection-lifecycle machine, with transitions expressed
/// as the packet sends/receives observable on the wire.
///
/// This deliberately mirrors the RFC 793 page-23 diagram, which draws almost
/// no reset arcs: the tracker therefore keeps an endpoint in its last
/// lifecycle state while it emits RSTs. That fidelity matters — the paper's
/// CLOSE_WAIT resource-exhaustion attack is the strategy "drop RSTs sent by
/// a client tracked in FIN_WAIT_1", which only exists because sending a RST
/// is not a diagram transition.
pub const TCP_DOT: &str = r#"digraph tcp {
    // connection establishment
    CLOSED -> SYN_SENT [label="send:SYN"];
    LISTEN -> SYN_RECEIVED [label="recv:SYN"];
    SYN_SENT -> ESTABLISHED [label="recv:SYN+ACK"];
    SYN_SENT -> SYN_RECEIVED [label="recv:SYN"];
    SYN_RECEIVED -> ESTABLISHED [label="recv:ACK, recv:DATA, recv:PSH+ACK"];

    // active close
    ESTABLISHED -> FIN_WAIT_1 [label="send:FIN+ACK"];
    FIN_WAIT_1 -> TIME_WAIT [label="recv:FIN+ACK"];
    FIN_WAIT_1 -> FIN_WAIT_2 [label="recv:ACK"];
    FIN_WAIT_2 -> TIME_WAIT [label="recv:FIN+ACK"];

    // passive close
    ESTABLISHED -> CLOSE_WAIT [label="recv:FIN+ACK"];
    CLOSE_WAIT -> LAST_ACK [label="send:FIN+ACK"];
    LAST_ACK -> CLOSED [label="recv:ACK"];

    // simultaneous close
    CLOSING -> TIME_WAIT [label="recv:ACK"];

    // the only reset arcs RFC 793 draws
    SYN_RECEIVED -> LISTEN [label="recv:RST"];
    SYN_SENT -> CLOSED [label="recv:RST"];
}
"#;

/// The DCCP connection-lifecycle machine (RFC 4340 §8).
pub const DCCP_DOT: &str = r#"digraph dccp {
    // connection establishment
    CLOSED -> REQUEST [label="send:REQUEST"];
    LISTEN -> RESPOND [label="recv:REQUEST"];
    REQUEST -> PARTOPEN [label="recv:RESPONSE"];
    PARTOPEN -> OPEN [label="recv:DATA, recv:ACK, recv:DATAACK, recv:SYNC"];
    RESPOND -> OPEN [label="recv:ACK, recv:DATAACK"];

    // teardown
    OPEN -> CLOSING [label="send:CLOSE"];
    OPEN -> CLOSEREQ [label="send:CLOSEREQ"];
    OPEN -> CLOSING [label="recv:CLOSEREQ"];
    CLOSING -> TIMEWAIT [label="recv:RESET"];
    CLOSEREQ -> CLOSED [label="recv:CLOSE"];
    OPEN -> CLOSED [label="recv:CLOSE"];

    // resets abort
    REQUEST -> CLOSED [label="recv:RESET, send:RESET"];
    RESPOND -> CLOSED [label="recv:RESET, send:RESET"];
    PARTOPEN -> CLOSED [label="recv:RESET, send:RESET"];
    OPEN -> CLOSED [label="recv:RESET, send:RESET"];
    CLOSEREQ -> CLOSED [label="recv:RESET, send:RESET"];
}
"#;

/// Parses and returns the built-in TCP state machine.
pub fn tcp_state_machine() -> Arc<StateMachine> {
    parse_dot(TCP_DOT).expect("built-in TCP state machine is valid")
}

/// Parses and returns the built-in DCCP state machine.
pub fn dccp_state_machine() -> Arc<StateMachine> {
    parse_dot(DCCP_DOT).expect("built-in DCCP state machine is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dir;

    #[test]
    fn tcp_machine_has_eleven_states() {
        let m = tcp_state_machine();
        // The RFC 793 diagram has 11 states; all must be present.
        for s in [
            "CLOSED",
            "LISTEN",
            "SYN_SENT",
            "SYN_RECEIVED",
            "ESTABLISHED",
            "FIN_WAIT_1",
            "FIN_WAIT_2",
            "CLOSE_WAIT",
            "CLOSING",
            "LAST_ACK",
            "TIME_WAIT",
        ] {
            assert!(m.state(s).is_ok(), "missing TCP state {s}");
        }
        assert_eq!(m.state_count(), 11);
    }

    #[test]
    fn tcp_client_handshake_path() {
        let m = tcp_state_machine();
        let closed = m.state("CLOSED").unwrap();
        let syn_sent = m.step(closed, Dir::Send, "SYN").unwrap();
        assert_eq!(m.state_name(syn_sent), "SYN_SENT");
        let est = m.step(syn_sent, Dir::Recv, "SYN+ACK").unwrap();
        assert_eq!(m.state_name(est), "ESTABLISHED");
    }

    #[test]
    fn tcp_server_handshake_path() {
        let m = tcp_state_machine();
        let listen = m.state("LISTEN").unwrap();
        let syn_rcvd = m.step(listen, Dir::Recv, "SYN").unwrap();
        assert_eq!(m.state_name(syn_rcvd), "SYN_RECEIVED");
        let est = m.step(syn_rcvd, Dir::Recv, "ACK").unwrap();
        assert_eq!(m.state_name(est), "ESTABLISHED");
    }

    #[test]
    fn tcp_passive_close_path() {
        let m = tcp_state_machine();
        let est = m.state("ESTABLISHED").unwrap();
        let cw = m.step(est, Dir::Recv, "FIN+ACK").unwrap();
        assert_eq!(m.state_name(cw), "CLOSE_WAIT");
        let la = m.step(cw, Dir::Send, "FIN+ACK").unwrap();
        assert_eq!(m.state_name(la), "LAST_ACK");
        let closed = m.step(la, Dir::Recv, "ACK").unwrap();
        assert_eq!(m.state_name(closed), "CLOSED");
    }

    #[test]
    fn tcp_resets_are_not_lifecycle_transitions_in_established() {
        // RFC 793's diagram draws no reset arc out of ESTABLISHED; the
        // tracker therefore keeps attributing reset traffic to the last
        // lifecycle state (which is what lets SNAKE key "drop RST"
        // strategies to FIN_WAIT_1 for the CLOSE_WAIT attack).
        let m = tcp_state_machine();
        let est = m.state("ESTABLISHED").unwrap();
        assert_eq!(m.step(est, Dir::Recv, "RST"), None);
        assert_eq!(m.step(est, Dir::Send, "RST"), None);
        let fw1 = m.state("FIN_WAIT_1").unwrap();
        assert_eq!(m.step(fw1, Dir::Send, "RST"), None);
    }

    #[test]
    fn tcp_reset_arcs_match_rfc_diagram() {
        let m = tcp_state_machine();
        let sr = m.state("SYN_RECEIVED").unwrap();
        assert_eq!(
            m.state_name(m.step(sr, Dir::Recv, "RST").unwrap()),
            "LISTEN"
        );
        let ss = m.state("SYN_SENT").unwrap();
        assert_eq!(
            m.state_name(m.step(ss, Dir::Recv, "RST").unwrap()),
            "CLOSED"
        );
    }

    #[test]
    fn tcp_data_does_not_change_state() {
        let m = tcp_state_machine();
        let est = m.state("ESTABLISHED").unwrap();
        assert_eq!(m.step(est, Dir::Recv, "DATA"), None);
        assert_eq!(m.step(est, Dir::Send, "ACK"), None);
    }

    #[test]
    fn dccp_machine_states() {
        let m = dccp_state_machine();
        for s in [
            "CLOSED", "LISTEN", "REQUEST", "RESPOND", "PARTOPEN", "OPEN", "CLOSEREQ", "CLOSING",
            "TIMEWAIT",
        ] {
            assert!(m.state(s).is_ok(), "missing DCCP state {s}");
        }
        assert_eq!(m.state_count(), 9);
    }

    #[test]
    fn dccp_client_open_path() {
        let m = dccp_state_machine();
        let closed = m.state("CLOSED").unwrap();
        let req = m.step(closed, Dir::Send, "REQUEST").unwrap();
        assert_eq!(m.state_name(req), "REQUEST");
        let po = m.step(req, Dir::Recv, "RESPONSE").unwrap();
        assert_eq!(m.state_name(po), "PARTOPEN");
        let open = m.step(po, Dir::Recv, "DATAACK").unwrap();
        assert_eq!(m.state_name(open), "OPEN");
    }

    #[test]
    fn dccp_reset_aborts_request() {
        let m = dccp_state_machine();
        let req = m.state("REQUEST").unwrap();
        let c = m.step(req, Dir::Recv, "RESET").unwrap();
        assert_eq!(m.state_name(c), "CLOSED");
    }
}
