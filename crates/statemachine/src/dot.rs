//! Parser for the dot-language state machine descriptions (paper §V-C).
//!
//! SNAKE accepts the subset of dot needed for protocol state machines:
//!
//! ```text
//! digraph tcp {
//!     // comments in either style
//!     # shell-style too
//!     CLOSED -> SYN_SENT [label="send:SYN"];
//!     SYN_SENT -> ESTABLISHED [label="recv:SYN+ACK"];
//! }
//! ```
//!
//! Edge labels carry the transition events: `send:TYPE` or `recv:TYPE`,
//! where `TYPE` is a packet-type label from the protocol's header spec.
//! Multiple events may be separated by commas (`label="recv:RST, send:RST"`),
//! producing one transition per event. Plain node declarations
//! (`ESTABLISHED;`) are allowed and intern the state.

use std::sync::Arc;

use crate::{Dir, Event, StateMachine, StateMachineError};

/// Parses a dot description into a [`StateMachine`].
///
/// # Errors
///
/// Returns [`StateMachineError::ParseError`] for syntax errors with the
/// offending line, and [`StateMachineError::BadLabel`] for labels that are
/// not `send:TYPE`/`recv:TYPE` lists.
///
/// # Examples
///
/// ```
/// let m = snake_statemachine::parse_dot(
///     "digraph t { A -> B [label=\"send:SYN\"]; }",
/// )?;
/// assert_eq!(m.state_count(), 2);
/// # Ok::<(), snake_statemachine::StateMachineError>(())
/// ```
pub fn parse_dot(text: &str) -> Result<Arc<StateMachine>, StateMachineError> {
    // Normalise statements: dot allows several per line and statements that
    // span lines; we re-split on `;` and `{`/`}` while tracking line numbers
    // approximately (good enough for error messages).
    let mut name: Option<String> = None;
    let mut edges: Vec<(String, String, Event)> = Vec::new();
    let mut nodes: Vec<String> = Vec::new();
    let mut in_body = false;
    let mut closed = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comments(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if closed {
            return Err(perr(lineno, "content after closing `}`"));
        }
        let mut rest = line;
        if !in_body {
            let body = rest
                .strip_prefix("digraph")
                .ok_or_else(|| perr(lineno, "expected `digraph <name> {`"))?;
            let body = body.trim();
            let (n, tail) = match body.split_once('{') {
                Some((n, tail)) => (n.trim(), tail),
                None => return Err(perr(lineno, "expected `{` on digraph line")),
            };
            if n.is_empty() || !ident_ok(n) {
                return Err(perr(lineno, "invalid digraph name"));
            }
            name = Some(n.to_owned());
            in_body = true;
            rest = tail;
            if rest.trim().is_empty() {
                continue;
            }
        }
        // Statements within the body, separated by `;`. A lone `}` closes.
        for stmt in rest.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt == "}" {
                in_body = false;
                closed = true;
                continue;
            }
            let stmt = match stmt.strip_suffix('}') {
                Some(s) => {
                    in_body = false;
                    closed = true;
                    let s = s.trim();
                    if s.is_empty() {
                        continue;
                    }
                    s
                }
                None => stmt,
            };
            parse_statement(stmt, lineno, &mut edges, &mut nodes)?;
        }
    }

    if in_body {
        return Err(perr(text.lines().count().max(1), "missing closing `}`"));
    }
    let name = name.ok_or_else(|| perr(1, "no `digraph` block found"))?;
    if edges.is_empty() {
        return Err(StateMachineError::EmptyMachine);
    }
    // Seed plain node declarations first so standalone states keep their
    // declaration order, then the edges.
    let mut seeded: Vec<(String, String, Event)> = Vec::new();
    for n in nodes {
        // A self-loop on a never-matching pseudo event interns the state
        // without affecting stepping; cheaper than widening the machine API.
        seeded.push((n.clone(), n, Event::new(Dir::Recv, "\u{0}never")));
    }
    seeded.extend(edges);
    StateMachine::new(name, seeded)
}

fn parse_statement(
    stmt: &str,
    lineno: usize,
    edges: &mut Vec<(String, String, Event)>,
    nodes: &mut Vec<String>,
) -> Result<(), StateMachineError> {
    if let Some((from, rest)) = stmt.split_once("->") {
        let from = from.trim();
        if !ident_ok(from) {
            return Err(perr(lineno, "invalid source state name"));
        }
        let (to, attrs) = match rest.find('[') {
            Some(i) => (rest[..i].trim(), Some(rest[i..].trim())),
            None => (rest.trim(), None),
        };
        if !ident_ok(to) {
            return Err(perr(lineno, "invalid destination state name"));
        }
        let attrs = attrs.ok_or_else(|| perr(lineno, "edge missing [label=\"...\"]"))?;
        let label = extract_label(attrs).ok_or_else(|| perr(lineno, "edge missing label"))?;
        for part in label.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            edges.push((from.to_owned(), to.to_owned(), parse_event(part)?));
        }
        Ok(())
    } else {
        // Plain node declaration, possibly with attributes we ignore.
        let node = match stmt.find('[') {
            Some(i) => stmt[..i].trim(),
            None => stmt,
        };
        if !ident_ok(node) {
            return Err(perr(lineno, "invalid statement"));
        }
        nodes.push(node.to_owned());
        Ok(())
    }
}

fn parse_event(text: &str) -> Result<Event, StateMachineError> {
    let bad = || StateMachineError::BadLabel {
        label: text.to_owned(),
    };
    let (dir, ty) = text.split_once(':').ok_or_else(bad)?;
    let dir = match dir.trim() {
        "send" => Dir::Send,
        "recv" => Dir::Recv,
        _ => return Err(bad()),
    };
    let ty = ty.trim();
    if ty.is_empty() {
        return Err(bad());
    }
    Ok(Event::new(dir, ty))
}

fn extract_label(attrs: &str) -> Option<String> {
    let i = attrs.find("label")?;
    let rest = attrs[i + "label".len()..].trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_owned())
}

fn strip_comments(line: &str) -> &str {
    let mut end = line.len();
    if let Some(i) = line.find("//") {
        end = end.min(i);
    }
    if let Some(i) = line.find('#') {
        end = end.min(i);
    }
    &line[..end]
}

fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn perr(line: usize, reason: &str) -> StateMachineError {
    StateMachineError::ParseError {
        line,
        reason: reason.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_machine() {
        let m = parse_dot("digraph t { A -> B [label=\"send:SYN\"]; }").unwrap();
        assert_eq!(m.name(), "t");
        assert_eq!(m.state_count(), 2);
        let a = m.state("A").unwrap();
        assert_eq!(m.step(a, Dir::Send, "SYN"), Some(m.state("B").unwrap()));
    }

    #[test]
    fn parses_multiline_with_comments() {
        let text = "digraph proto {\n  // establishment\n  A -> B [label=\"recv:REQ\"];\n  # teardown\n  B -> A [label=\"send:FIN+ACK\"];\n}\n";
        let m = parse_dot(text).unwrap();
        assert_eq!(m.transitions().len(), 2);
    }

    #[test]
    fn comma_separated_events_fan_out() {
        let m = parse_dot("digraph t { A -> B [label=\"recv:RST, send:RST\"]; }").unwrap();
        assert_eq!(m.transitions().len(), 2);
        let a = m.state("A").unwrap();
        let b = m.state("B").unwrap();
        assert_eq!(m.step(a, Dir::Recv, "RST"), Some(b));
        assert_eq!(m.step(a, Dir::Send, "RST"), Some(b));
    }

    #[test]
    fn plain_node_declarations_intern_states() {
        let m = parse_dot("digraph t { LONELY; A -> B [label=\"send:X\"]; }").unwrap();
        assert!(m.state("LONELY").is_ok());
        assert_eq!(m.states()[0], "LONELY");
    }

    #[test]
    fn rejects_edge_without_label() {
        assert!(parse_dot("digraph t { A -> B; }").is_err());
    }

    #[test]
    fn rejects_bad_event_direction() {
        let e = parse_dot("digraph t { A -> B [label=\"emit:SYN\"]; }").unwrap_err();
        assert!(matches!(e, StateMachineError::BadLabel { .. }));
    }

    #[test]
    fn rejects_missing_brace() {
        assert!(parse_dot("digraph t { A -> B [label=\"send:X\"];").is_err());
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(matches!(
            parse_dot("digraph t { }"),
            Err(StateMachineError::EmptyMachine)
        ));
    }

    #[test]
    fn packet_type_labels_may_contain_plus() {
        let m = parse_dot("digraph t { A -> B [label=\"recv:SYN+ACK\"]; }").unwrap();
        let a = m.state("A").unwrap();
        assert!(m.step(a, Dir::Recv, "SYN+ACK").is_some());
    }
}
