use std::error::Error;
use std::fmt;

/// Errors from parsing or using a protocol state machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateMachineError {
    /// The dot text could not be parsed.
    ParseError {
        /// Line number (1-based).
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A state name was referenced that is not part of the machine.
    UnknownState {
        /// The offending state name.
        name: String,
    },
    /// The machine has no states.
    EmptyMachine,
    /// A transition label was malformed (expected `send:TYPE` / `recv:TYPE`).
    BadLabel {
        /// The offending label.
        label: String,
    },
}

impl fmt::Display for StateMachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateMachineError::ParseError { line, reason } => {
                write!(f, "state machine parse error on line {line}: {reason}")
            }
            StateMachineError::UnknownState { name } => write!(f, "unknown state `{name}`"),
            StateMachineError::EmptyMachine => write!(f, "state machine has no states"),
            StateMachineError::BadLabel { label } => {
                write!(
                    f,
                    "bad transition label `{label}`: expected `send:TYPE` or `recv:TYPE`"
                )
            }
        }
    }
}

impl Error for StateMachineError {}
