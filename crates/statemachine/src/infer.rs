//! Passive state-machine inference (k-tails).
//!
//! The paper assumes the protocol's state machine is available from its
//! specification, noting that "for proprietary protocols where the
//! specification of the state machine may not be available, recent work in
//! state machine inference may be leveraged" (§I, citing Wang et al.).
//! This module implements that escape hatch: given event traces observed
//! from an endpoint (packet type send/receive sequences, exactly what the
//! attack proxy sees), it infers a connection-lifecycle state machine with
//! the classic k-tails algorithm:
//!
//! 1. build a prefix-tree acceptor over the traces,
//! 2. merge states whose outgoing behaviour agrees for `k` steps,
//! 3. re-merge until the result is deterministic.
//!
//! The inferred machine plugs directly into the
//! [`Tracker`](crate::Tracker), so SNAKE can search a protocol it has
//! never seen a specification for.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use crate::{Event, StateMachine, StateMachineError};

/// Tuning for [`infer_machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceConfig {
    /// Look-ahead depth for state equivalence: two states merge when the
    /// sets of event sequences of length ≤ `k` leaving them are equal.
    /// `k = 2` recovers protocol handshake structure well in practice.
    pub k: usize,
}

impl Default for InferenceConfig {
    fn default() -> InferenceConfig {
        InferenceConfig { k: 2 }
    }
}

/// Infers a state machine from endpoint event traces.
///
/// Each trace is the ordered list of [`Event`]s one endpoint produced or
/// consumed over one connection, starting from the protocol's initial
/// state. The returned machine's initial state is named `S0`; other states
/// are `S1`, `S2`, … in breadth-first discovery order.
///
/// # Errors
///
/// Returns [`StateMachineError::EmptyMachine`] when the traces contain no
/// events at all.
///
/// # Examples
///
/// ```
/// use snake_statemachine::{infer_machine, Dir, Event, InferenceConfig};
///
/// let trace = vec![
///     Event::new(Dir::Send, "SYN"),
///     Event::new(Dir::Recv, "SYN+ACK"),
///     Event::new(Dir::Send, "ACK"),
/// ];
/// let machine = infer_machine("tcp_client", &[trace], InferenceConfig::default())?;
/// assert!(machine.state_count() >= 2);
/// # Ok::<(), snake_statemachine::StateMachineError>(())
/// ```
pub fn infer_machine(
    name: impl Into<String>,
    traces: &[Vec<Event>],
    config: InferenceConfig,
) -> Result<Arc<StateMachine>, StateMachineError> {
    // --- 1. Prefix-tree acceptor -------------------------------------
    // State 0 is the root; children keyed by event.
    let mut children: Vec<BTreeMap<Event, usize>> = vec![BTreeMap::new()];
    for trace in traces {
        let mut at = 0usize;
        for event in trace {
            at = match children[at].get(event) {
                Some(&next) => next,
                None => {
                    let next = children.len();
                    children.push(BTreeMap::new());
                    children[at].insert(event.clone(), next);
                    next
                }
            };
        }
    }
    if children.len() == 1 {
        return Err(StateMachineError::EmptyMachine);
    }

    // --- 2. k-tails equivalence over the PTA -------------------------
    let n = children.len();
    let mut tails: Vec<BTreeSet<Vec<Event>>> = vec![BTreeSet::new(); n];
    for (state, tail) in tails.iter_mut().enumerate() {
        collect_tails(&children, state, config.k, &mut Vec::new(), tail);
    }
    let mut uf = UnionFind::new(n);
    let mut by_tail: HashMap<&BTreeSet<Vec<Event>>, usize> = HashMap::new();
    for (state, tail) in tails.iter().enumerate() {
        match by_tail.get(tail) {
            Some(&rep) => uf.union(rep, state),
            None => {
                by_tail.insert(tail, state);
            }
        }
    }

    // --- 3. Determinise by further merging ---------------------------
    // If a merged state has two transitions on the same event to
    // different groups, those target groups must merge too.
    loop {
        let mut changed = false;
        let mut outgoing: HashMap<(usize, &Event), usize> = HashMap::new();
        for (state, edges) in children.iter().enumerate() {
            let group = uf.find(state);
            for (event, &to) in edges {
                let to_group = uf.find(to);
                match outgoing.get(&(group, event)) {
                    Some(&existing) if uf.find(existing) != to_group => {
                        uf.union(existing, to_group);
                        changed = true;
                    }
                    Some(_) => {}
                    None => {
                        outgoing.insert((group, event), to_group);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- 4. Emit the machine (BFS naming from the root) --------------
    let mut group_name: HashMap<usize, String> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    let root = uf.find(0);
    group_name.insert(root, "S0".to_owned());
    order.push(root);
    let mut frontier = std::collections::VecDeque::from([root]);
    while let Some(group) = frontier.pop_front() {
        // Deterministic child order: scan PTA states in index order.
        for (state, edges) in children.iter().enumerate() {
            if uf.find(state) != group {
                continue;
            }
            for to in edges.values() {
                let to_group = uf.find(*to);
                if let std::collections::hash_map::Entry::Vacant(slot) = group_name.entry(to_group)
                {
                    slot.insert(format!("S{}", order.len()));
                    order.push(to_group);
                    frontier.push_back(to_group);
                }
            }
        }
    }

    let mut edges_out: Vec<(String, String, Event)> = Vec::new();
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    // Seed the initial state first so it gets index 0 in the machine.
    edges_out.push((
        "S0".to_owned(),
        "S0".to_owned(),
        Event::new(crate::Dir::Recv, "\u{0}never"),
    ));
    for (state, edges) in children.iter().enumerate() {
        let from = group_name[&uf.find(state)].clone();
        for (event, to) in edges {
            let to = group_name[&uf.find(*to)].clone();
            let key = (from.clone(), to.clone(), event.to_string());
            if seen.insert(key) {
                edges_out.push((from.clone(), to, event.clone()));
            }
        }
    }
    StateMachine::new(name, edges_out)
}

/// Collects all event sequences of length ≤ `k` leaving `state`.
fn collect_tails(
    children: &[BTreeMap<Event, usize>],
    state: usize,
    k: usize,
    prefix: &mut Vec<Event>,
    out: &mut BTreeSet<Vec<Event>>,
) {
    if !prefix.is_empty() || children[state].is_empty() {
        out.insert(prefix.clone());
    }
    if prefix.len() == k {
        return;
    }
    for (event, &next) in &children[state] {
        prefix.push(event.clone());
        collect_tails(children, next, k, prefix, out);
        prefix.pop();
    }
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Merge into the smaller index so the root stays stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dir, Tracker};

    fn ev(dir: Dir, ty: &str) -> Event {
        Event::new(dir, ty)
    }

    fn handshake_trace(n_data: usize) -> Vec<Event> {
        let mut t = vec![
            ev(Dir::Send, "SYN"),
            ev(Dir::Recv, "SYN+ACK"),
            ev(Dir::Send, "ACK"),
        ];
        for _ in 0..n_data {
            t.push(ev(Dir::Recv, "DATA"));
            t.push(ev(Dir::Send, "ACK"));
        }
        t.push(ev(Dir::Recv, "FIN+ACK"));
        t.push(ev(Dir::Send, "ACK"));
        t
    }

    #[test]
    fn infers_handshake_structure() {
        let traces: Vec<Vec<Event>> = (1..6).map(handshake_trace).collect();
        let m = infer_machine("inferred_tcp", &traces, InferenceConfig::default()).unwrap();
        // Handshake prefix must be present and deterministic.
        let s0 = m.state("S0").unwrap();
        let after_syn = m.step(s0, Dir::Send, "SYN").expect("SYN transition");
        let after_synack = m
            .step(after_syn, Dir::Recv, "SYN+ACK")
            .expect("SYN+ACK transition");
        assert_ne!(after_syn, after_synack);
        // The data-transfer loop must have collapsed into a cycle: from the
        // established region, recv DATA / send ACK eventually revisits a
        // state (rather than growing a chain per data packet).
        assert!(
            m.state_count() < 15,
            "k-tails must fold the data loop: {} states",
            m.state_count()
        );
    }

    #[test]
    fn inferred_machine_replays_its_own_traces() {
        let traces: Vec<Vec<Event>> = (1..6).map(handshake_trace).collect();
        let m = infer_machine("inferred_tcp", &traces, InferenceConfig::default()).unwrap();
        // Every training trace must be a valid path from S0: each event
        // either transitions or (never, here) self-loops.
        for trace in &traces {
            let mut tracker = Tracker::new(m.clone(), "S0").unwrap();
            for (t, e) in trace.iter().enumerate() {
                let before = tracker.current();
                tracker.observe(e.dir, &e.packet_type, t as u64);
                // Transitions observed during training must exist: the
                // machine accepts the trace without falling back to the
                // implicit self-loop on handshake events.
                if e.packet_type != "ACK" && e.packet_type != "DATA" {
                    assert!(
                        m.step(before, e.dir, &e.packet_type).is_some(),
                        "missing transition for {e} in inferred machine"
                    );
                }
            }
        }
    }

    #[test]
    fn determinism_no_conflicting_edges() {
        let traces: Vec<Vec<Event>> = (1..8).map(handshake_trace).collect();
        let m = infer_machine("d", &traces, InferenceConfig { k: 2 }).unwrap();
        use std::collections::HashMap;
        let mut seen: HashMap<(usize, String), usize> = HashMap::new();
        for t in m.transitions() {
            let key = (t.from.index(), t.event.to_string());
            if let Some(&existing) = seen.get(&key) {
                assert_eq!(
                    existing,
                    t.to.index(),
                    "nondeterministic edge on {}",
                    t.event
                );
            }
            seen.insert(key, t.to.index());
        }
    }

    #[test]
    fn distinct_behaviours_stay_distinct() {
        // Two different protocols' traces: a handshake and a one-shot
        // request/response. Inference on each gives different machines.
        let hs = vec![handshake_trace(2)];
        let rr = vec![vec![ev(Dir::Send, "REQ"), ev(Dir::Recv, "RESP")]];
        let a = infer_machine("a", &hs, InferenceConfig::default()).unwrap();
        let b = infer_machine("b", &rr, InferenceConfig::default()).unwrap();
        assert!(a.state_count() > b.state_count());
        let b0 = b.state("S0").unwrap();
        assert!(b.step(b0, Dir::Send, "REQ").is_some());
        assert!(b.step(b0, Dir::Send, "SYN").is_none());
    }

    #[test]
    fn empty_traces_rejected() {
        assert!(matches!(
            infer_machine("e", &[], InferenceConfig::default()),
            Err(StateMachineError::EmptyMachine)
        ));
        assert!(matches!(
            infer_machine("e", &[vec![]], InferenceConfig::default()),
            Err(StateMachineError::EmptyMachine)
        ));
    }

    #[test]
    fn k_zero_collapses_everything() {
        // k = 0 makes all non-leaf states equivalent: maximal merging.
        let traces: Vec<Vec<Event>> = (1..4).map(handshake_trace).collect();
        let m = infer_machine("k0", &traces, InferenceConfig { k: 0 }).unwrap();
        assert!(
            m.state_count() <= 2,
            "k=0 should collapse: {}",
            m.state_count()
        );
    }

    #[test]
    fn larger_k_refines() {
        let traces: Vec<Vec<Event>> = (1..6).map(handshake_trace).collect();
        let coarse = infer_machine("c", &traces, InferenceConfig { k: 1 }).unwrap();
        let fine = infer_machine("f", &traces, InferenceConfig { k: 3 }).unwrap();
        assert!(fine.state_count() >= coarse.state_count());
    }
}
