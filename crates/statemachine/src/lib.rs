//! Protocol state machine descriptions and packet-driven state tracking.
//!
//! SNAKE's search-space reduction (paper §IV-B) rests on knowing which
//! protocol state each endpoint is in *without instrumenting the
//! implementation*. The user supplies the protocol's connection-lifecycle
//! state machine in the dot graph language; at run time a tracker watches the
//! packets crossing the attack proxy and replays them against the machine's
//! transition rules to infer the current state of both the client and the
//! server.
//!
//! The tracker also records per-state statistics — which packet types were
//! observed, how many, how long the endpoint stayed in the state, and how
//! often it was visited — which the controller uses as feedback when
//! generating `(state, packet type)` attack strategies.
//!
//! Built-in machines are provided for TCP (RFC 793's 11-state diagram) and
//! DCCP (RFC 4340 §8), the protocols evaluated in the paper.
//!
//! # Examples
//!
//! ```
//! use snake_statemachine::{StateMachine, Tracker, Dir, tcp_state_machine};
//!
//! let machine = tcp_state_machine();
//! let mut client = Tracker::new(machine.clone(), "CLOSED")?;
//! client.observe(Dir::Send, "SYN", 0);
//! assert_eq!(client.current_name(), "SYN_SENT");
//! client.observe(Dir::Recv, "SYN+ACK", 1_000_000);
//! assert_eq!(client.current_name(), "ESTABLISHED");
//! # Ok::<(), snake_statemachine::StateMachineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod builtin;
mod dot;
mod error;
mod infer;
mod machine;
mod tracker;

pub use builtin::{dccp_state_machine, tcp_state_machine, DCCP_DOT, TCP_DOT};
pub use dot::parse_dot;
pub use error::StateMachineError;
pub use infer::{infer_machine, InferenceConfig};
pub use machine::{Dir, Event, StateId, StateMachine, Transition};
pub use tracker::{PairTracker, StateStats, Tracker};
