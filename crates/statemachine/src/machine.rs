use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::StateMachineError;

/// Index of a state within its [`StateMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Direction of an observed packet relative to the tracked endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// The endpoint sent the packet.
    Send,
    /// The endpoint received the packet.
    Recv,
}

impl Dir {
    /// The opposite direction (a send for one endpoint is a receive for the
    /// peer).
    pub fn flip(self) -> Dir {
        match self {
            Dir::Send => Dir::Recv,
            Dir::Recv => Dir::Send,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::Send => f.write_str("send"),
            Dir::Recv => f.write_str("recv"),
        }
    }
}

/// A packet event that can trigger a transition: a packet of a named type
/// sent or received by the endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Event {
    /// Direction relative to the endpoint.
    pub dir: Dir,
    /// Packet-type label (for example `"SYN+ACK"` or `"REQUEST"`).
    pub packet_type: String,
}

impl Event {
    /// Convenience constructor.
    pub fn new(dir: Dir, packet_type: impl Into<String>) -> Self {
        Event {
            dir,
            packet_type: packet_type.into(),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.dir, self.packet_type)
    }
}

/// A transition rule: in `from`, on `event`, move to `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Origin state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Triggering event.
    pub event: Event,
}

/// A protocol connection-lifecycle state machine.
///
/// States are identified by name (as written in the dot description);
/// transitions fire on packet send/receive events. Events with no matching
/// transition leave the state unchanged — RFC state diagrams only draw the
/// state-changing packets, and everything else (data flow in ESTABLISHED,
/// say) is an implicit self-loop.
#[derive(Debug, Clone)]
pub struct StateMachine {
    name: String,
    states: Vec<String>,
    by_name: HashMap<String, StateId>,
    transitions: Vec<Transition>,
    /// Per-state, per-direction transition index: `step_table[state][dir]`
    /// maps packet type → destination. `step` is called for every tracker
    /// on every proxied packet, so it must not scan `transitions`.
    step_table: Vec<[HashMap<String, StateId>; 2]>,
}

impl StateMachine {
    /// Builds a machine from state names and transitions expressed by name.
    ///
    /// States are created on first mention, in mention order.
    ///
    /// # Errors
    ///
    /// Returns [`StateMachineError::EmptyMachine`] if no transitions are
    /// given.
    pub fn new(
        name: impl Into<String>,
        edges: Vec<(String, String, Event)>,
    ) -> Result<Arc<Self>, StateMachineError> {
        if edges.is_empty() {
            return Err(StateMachineError::EmptyMachine);
        }
        let mut states = Vec::new();
        let mut by_name = HashMap::new();
        let intern = |n: &str, states: &mut Vec<String>, by_name: &mut HashMap<String, StateId>| {
            if let Some(&id) = by_name.get(n) {
                id
            } else {
                let id = StateId(states.len());
                states.push(n.to_owned());
                by_name.insert(n.to_owned(), id);
                id
            }
        };
        let mut transitions = Vec::with_capacity(edges.len());
        for (from, to, event) in edges {
            let f = intern(&from, &mut states, &mut by_name);
            let t = intern(&to, &mut states, &mut by_name);
            transitions.push(Transition {
                from: f,
                to: t,
                event,
            });
        }
        let mut step_table: Vec<[HashMap<String, StateId>; 2]> = states
            .iter()
            .map(|_| [HashMap::new(), HashMap::new()])
            .collect();
        for t in &transitions {
            // First matching transition wins, same as the old linear scan.
            step_table[t.from.0][t.event.dir as usize]
                .entry(t.event.packet_type.clone())
                .or_insert(t.to);
        }
        Ok(Arc::new(StateMachine {
            name: name.into(),
            states,
            by_name,
            transitions,
            step_table,
        }))
    }

    /// The machine's name (the dot `digraph` name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All state names, in declaration order.
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// All transition rules.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Looks up a state by name.
    ///
    /// # Errors
    ///
    /// Returns [`StateMachineError::UnknownState`] if absent.
    pub fn state(&self, name: &str) -> Result<StateId, StateMachineError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StateMachineError::UnknownState {
                name: name.to_owned(),
            })
    }

    /// The name of a state.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this machine.
    pub fn state_name(&self, id: StateId) -> &str {
        &self.states[id.0]
    }

    /// Finds the destination of the first transition out of `from` matching
    /// the event, or `None` (implicit self-loop).
    pub fn step(&self, from: StateId, dir: Dir, packet_type: &str) -> Option<StateId> {
        self.step_table[from.0][dir as usize]
            .get(packet_type)
            .copied()
    }

    /// Renders the machine back to dot, suitable for graphviz. Internal
    /// state-interning sentinel edges (never-matching events) are omitted.
    pub fn to_dot(&self) -> String {
        let mut out = format!("digraph {} {{\n", self.name);
        for t in &self.transitions {
            if t.event.packet_type.starts_with('\u{0}') {
                continue;
            }
            out.push_str(&format!(
                "    {} -> {} [label=\"{}\"];\n",
                self.states[t.from.0], self.states[t.to.0], t.event
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Arc<StateMachine> {
        StateMachine::new(
            "toy",
            vec![
                ("A".into(), "B".into(), Event::new(Dir::Send, "X")),
                ("B".into(), "C".into(), Event::new(Dir::Recv, "Y")),
                ("B".into(), "A".into(), Event::new(Dir::Recv, "X")),
            ],
        )
        .unwrap()
    }

    #[test]
    fn states_interned_in_mention_order() {
        let m = toy();
        assert_eq!(m.states(), &["A", "B", "C"]);
        assert_eq!(m.state("A").unwrap().index(), 0);
        assert_eq!(m.state("C").unwrap().index(), 2);
    }

    #[test]
    fn step_follows_matching_transition() {
        let m = toy();
        let a = m.state("A").unwrap();
        let b = m.state("B").unwrap();
        assert_eq!(m.step(a, Dir::Send, "X"), Some(b));
        assert_eq!(m.step(b, Dir::Recv, "Y"), Some(m.state("C").unwrap()));
    }

    #[test]
    fn step_without_match_is_none() {
        let m = toy();
        let a = m.state("A").unwrap();
        assert_eq!(m.step(a, Dir::Recv, "X"), None, "direction must match");
        assert_eq!(m.step(a, Dir::Send, "Z"), None, "type must match");
    }

    #[test]
    fn unknown_state_error() {
        let m = toy();
        assert!(matches!(
            m.state("Q"),
            Err(StateMachineError::UnknownState { .. })
        ));
    }

    #[test]
    fn empty_machine_rejected() {
        assert!(matches!(
            StateMachine::new("e", vec![]),
            Err(StateMachineError::EmptyMachine)
        ));
    }

    #[test]
    fn to_dot_roundtrips_through_parser() {
        let m = toy();
        let reparsed = crate::parse_dot(&m.to_dot()).unwrap();
        assert_eq!(reparsed.name(), "toy");
        assert_eq!(reparsed.state_count(), 3);
        assert_eq!(reparsed.transitions().len(), 3);
    }

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::Send.flip(), Dir::Recv);
        assert_eq!(Dir::Recv.flip(), Dir::Send);
    }
}
