use std::collections::BTreeMap;
use std::sync::Arc;

use crate::{Dir, StateId, StateMachine, StateMachineError};

/// Statistics SNAKE's state tracker collects about one state of one endpoint
/// (paper §V-C): packet types sent/received while in the state, time spent,
/// and visit count. The controller uses these as feedback for strategy
/// generation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateStats {
    /// How many times the endpoint entered this state.
    pub visits: u64,
    /// Total simulated time spent in this state, nanoseconds.
    pub total_time_nanos: u64,
    /// Packets sent while in this state, by packet-type label.
    pub sent: BTreeMap<String, u64>,
    /// Packets received while in this state, by packet-type label.
    pub recv: BTreeMap<String, u64>,
}

impl StateStats {
    /// Total number of packets observed (both directions) in this state.
    pub fn packet_count(&self) -> u64 {
        self.sent.values().sum::<u64>() + self.recv.values().sum::<u64>()
    }
}

/// Tracks one endpoint's protocol state by observing the packets it sends
/// and receives, using only the state machine's transition rules — no access
/// to the implementation.
#[derive(Debug, Clone)]
pub struct Tracker {
    machine: Arc<StateMachine>,
    current: StateId,
    entered_at: u64,
    stats: Vec<StateStats>,
    transitions_taken: u64,
}

impl Tracker {
    /// Creates a tracker starting in the named state (clients start in
    /// `CLOSED`, servers in `LISTEN`).
    ///
    /// # Errors
    ///
    /// Returns [`StateMachineError::UnknownState`] if the machine has no
    /// state with that name.
    pub fn new(machine: Arc<StateMachine>, initial: &str) -> Result<Self, StateMachineError> {
        let current = machine.state(initial)?;
        let mut stats = vec![StateStats::default(); machine.state_count()];
        stats[current.index()].visits = 1;
        Ok(Tracker {
            machine,
            current,
            entered_at: 0,
            stats,
            transitions_taken: 0,
        })
    }

    /// The machine this tracker follows.
    pub fn machine(&self) -> &Arc<StateMachine> {
        &self.machine
    }

    /// The inferred current state.
    pub fn current(&self) -> StateId {
        self.current
    }

    /// The inferred current state's name.
    pub fn current_name(&self) -> &str {
        self.machine.state_name(self.current)
    }

    /// Number of transitions the tracker has followed.
    pub fn transitions_taken(&self) -> u64 {
        self.transitions_taken
    }

    /// Observes one packet event at simulated time `now_nanos` and returns
    /// the (possibly unchanged) state after applying the transition rules.
    ///
    /// The packet is accounted to the state the endpoint was in *when the
    /// packet was observed*; the transition (if any) happens after.
    pub fn observe(&mut self, dir: Dir, packet_type: &str, now_nanos: u64) -> StateId {
        let stats = &mut self.stats[self.current.index()];
        let bucket = match dir {
            Dir::Send => &mut stats.sent,
            Dir::Recv => &mut stats.recv,
        };
        // get_mut first: after the first packet of each type the count
        // bumps without allocating a key String (this runs per packet).
        if let Some(count) = bucket.get_mut(packet_type) {
            *count += 1;
        } else {
            bucket.insert(packet_type.to_owned(), 1);
        }

        if let Some(next) = self.machine.step(self.current, dir, packet_type) {
            if next != self.current {
                let dwell = now_nanos.saturating_sub(self.entered_at);
                self.stats[self.current.index()].total_time_nanos += dwell;
                self.current = next;
                self.entered_at = now_nanos;
                self.stats[next.index()].visits += 1;
                self.transitions_taken += 1;
            }
        }
        self.current
    }

    /// Closes time accounting at the end of a run.
    pub fn finish(&mut self, now_nanos: u64) {
        let dwell = now_nanos.saturating_sub(self.entered_at);
        self.stats[self.current.index()].total_time_nanos += dwell;
        self.entered_at = now_nanos;
    }

    /// Statistics for a state.
    pub fn stats(&self, state: StateId) -> &StateStats {
        &self.stats[state.index()]
    }

    /// Iterates over `(state name, stats)` for every *visited* state.
    pub fn visited(&self) -> impl Iterator<Item = (&str, &StateStats)> {
        self.machine
            .states()
            .iter()
            .enumerate()
            .filter(|(i, _)| self.stats[*i].visits > 0)
            .map(|(i, n)| (n.as_str(), &self.stats[i]))
    }

    /// Every `(state, packet type, direction)` pair observed, with counts —
    /// the feedback that seeds SNAKE's strategy generation.
    pub fn observed_pairs(&self) -> Vec<(String, String, Dir, u64)> {
        let mut out = Vec::new();
        for (i, name) in self.machine.states().iter().enumerate() {
            for (ty, &n) in &self.stats[i].sent {
                out.push((name.clone(), ty.clone(), Dir::Send, n));
            }
            for (ty, &n) in &self.stats[i].recv {
                out.push((name.clone(), ty.clone(), Dir::Recv, n));
            }
        }
        out
    }
}

/// Tracks both endpoints of a two-party connection from a single packet
/// stream: a packet from the client is a `Send` for the client tracker and a
/// `Recv` for the server tracker.
#[derive(Debug, Clone)]
pub struct PairTracker {
    client: Tracker,
    server: Tracker,
}

impl PairTracker {
    /// Creates a pair of trackers over the same machine; by convention the
    /// client starts in `client_initial` (for example `CLOSED`) and the
    /// server in `server_initial` (for example `LISTEN`).
    ///
    /// # Errors
    ///
    /// Returns [`StateMachineError::UnknownState`] if either initial state
    /// does not exist.
    pub fn new(
        machine: Arc<StateMachine>,
        client_initial: &str,
        server_initial: &str,
    ) -> Result<Self, StateMachineError> {
        Ok(PairTracker {
            client: Tracker::new(Arc::clone(&machine), client_initial)?,
            server: Tracker::new(machine, server_initial)?,
        })
    }

    /// Observes one packet crossing the proxy.
    ///
    /// `from_client` is true for packets travelling client → server.
    pub fn observe_packet(&mut self, from_client: bool, packet_type: &str, now_nanos: u64) {
        if from_client {
            self.client.observe(Dir::Send, packet_type, now_nanos);
            self.server.observe(Dir::Recv, packet_type, now_nanos);
        } else {
            self.server.observe(Dir::Send, packet_type, now_nanos);
            self.client.observe(Dir::Recv, packet_type, now_nanos);
        }
    }

    /// Closes time accounting on both trackers.
    pub fn finish(&mut self, now_nanos: u64) {
        self.client.finish(now_nanos);
        self.server.finish(now_nanos);
    }

    /// The client-side tracker.
    pub fn client(&self) -> &Tracker {
        &self.client
    }

    /// The server-side tracker.
    pub fn server(&self) -> &Tracker {
        &self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tcp_state_machine, Dir};

    #[test]
    fn tracker_follows_tcp_handshake() {
        let m = tcp_state_machine();
        let mut t = Tracker::new(m, "CLOSED").unwrap();
        assert_eq!(t.current_name(), "CLOSED");
        t.observe(Dir::Send, "SYN", 0);
        assert_eq!(t.current_name(), "SYN_SENT");
        t.observe(Dir::Recv, "SYN+ACK", 10);
        assert_eq!(t.current_name(), "ESTABLISHED");
        t.observe(Dir::Send, "ACK", 20);
        assert_eq!(
            t.current_name(),
            "ESTABLISHED",
            "pure ACK send is a self-loop"
        );
        assert_eq!(t.transitions_taken(), 2);
    }

    #[test]
    fn packets_accounted_to_state_at_observation() {
        let m = tcp_state_machine();
        let mut t = Tracker::new(m.clone(), "CLOSED").unwrap();
        t.observe(Dir::Send, "SYN", 0);
        // The SYN was observed while still in CLOSED.
        let closed = m.state("CLOSED").unwrap();
        assert_eq!(t.stats(closed).sent.get("SYN"), Some(&1));
        let syn_sent = m.state("SYN_SENT").unwrap();
        assert_eq!(t.stats(syn_sent).visits, 1);
    }

    #[test]
    fn time_accounting_accumulates_dwell() {
        let m = tcp_state_machine();
        let mut t = Tracker::new(m.clone(), "CLOSED").unwrap();
        t.observe(Dir::Send, "SYN", 1_000);
        t.observe(Dir::Recv, "SYN+ACK", 5_000);
        t.finish(11_000);
        let closed = m.state("CLOSED").unwrap();
        let syn_sent = m.state("SYN_SENT").unwrap();
        let est = m.state("ESTABLISHED").unwrap();
        assert_eq!(t.stats(closed).total_time_nanos, 1_000);
        assert_eq!(t.stats(syn_sent).total_time_nanos, 4_000);
        assert_eq!(t.stats(est).total_time_nanos, 6_000);
    }

    #[test]
    fn revisits_increment_visit_count() {
        let m = tcp_state_machine();
        let mut t = Tracker::new(m.clone(), "CLOSED").unwrap();
        t.observe(Dir::Send, "SYN", 0);
        t.observe(Dir::Recv, "RST", 1);
        assert_eq!(t.current_name(), "CLOSED");
        t.observe(Dir::Send, "SYN", 2);
        assert_eq!(t.current_name(), "SYN_SENT");
        let closed = m.state("CLOSED").unwrap();
        assert_eq!(t.stats(closed).visits, 2);
    }

    #[test]
    fn pair_tracker_tracks_both_sides() {
        let m = tcp_state_machine();
        let mut p = PairTracker::new(m, "CLOSED", "LISTEN").unwrap();
        p.observe_packet(true, "SYN", 0);
        assert_eq!(p.client().current_name(), "SYN_SENT");
        assert_eq!(p.server().current_name(), "SYN_RECEIVED");
        p.observe_packet(false, "SYN+ACK", 10);
        assert_eq!(p.client().current_name(), "ESTABLISHED");
        p.observe_packet(true, "ACK", 20);
        assert_eq!(p.server().current_name(), "ESTABLISHED");
    }

    #[test]
    fn observed_pairs_reports_feedback() {
        let m = tcp_state_machine();
        let mut t = Tracker::new(m, "CLOSED").unwrap();
        t.observe(Dir::Send, "SYN", 0);
        t.observe(Dir::Recv, "SYN+ACK", 1);
        let pairs = t.observed_pairs();
        assert!(pairs
            .iter()
            .any(|(s, ty, d, n)| s == "CLOSED" && ty == "SYN" && *d == Dir::Send && *n == 1));
        assert!(pairs
            .iter()
            .any(|(s, ty, d, _)| s == "SYN_SENT" && ty == "SYN+ACK" && *d == Dir::Recv));
    }

    #[test]
    fn visited_skips_untouched_states() {
        let m = tcp_state_machine();
        let mut t = Tracker::new(m, "CLOSED").unwrap();
        t.observe(Dir::Send, "SYN", 0);
        let visited: Vec<&str> = t.visited().map(|(n, _)| n).collect();
        assert!(visited.contains(&"CLOSED"));
        assert!(visited.contains(&"SYN_SENT"));
        assert!(!visited.contains(&"CLOSE_WAIT"));
    }

    #[test]
    fn unknown_initial_state_rejected() {
        let m = tcp_state_machine();
        assert!(Tracker::new(m, "NOPE").is_err());
    }
}
