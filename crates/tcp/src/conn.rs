use snake_netsim::{SimDuration, SimTime};
use snake_packet::tcp::{TcpFlags, TcpPacketType};

use crate::profile::{AbortStyle, InvalidFlagPolicy, Profile};
use crate::seq;
use crate::MSS;

/// The DSACK marker carried in `urgent_ptr` (URG clear) by receivers whose
/// profile supports DSACK; see [`Profile::dsack`]. It tags acknowledgments
/// generated for fully-duplicate old segments.
pub const DSACK_MARKER: u16 = 1;

/// The SACK marker carried in `urgent_ptr` (URG clear) by SACK-capable
/// receivers on acknowledgments generated for out-of-order segments — the
/// fixed-header stand-in for a SACK block reporting a reception hole.
pub const SACK_MARKER: u16 = 2;

/// The TCP connection states of RFC 793.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum State {
    Listen,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
    Closed,
}

impl State {
    /// The state's conventional upper-case name (matches the built-in dot
    /// state machine).
    pub fn name(&self) -> &'static str {
        match self {
            State::Listen => "LISTEN",
            State::SynSent => "SYN_SENT",
            State::SynReceived => "SYN_RECEIVED",
            State::Established => "ESTABLISHED",
            State::FinWait1 => "FIN_WAIT_1",
            State::FinWait2 => "FIN_WAIT_2",
            State::CloseWait => "CLOSE_WAIT",
            State::Closing => "CLOSING",
            State::LastAck => "LAST_ACK",
            State::TimeWait => "TIME_WAIT",
            State::Closed => "CLOSED",
        }
    }
}

impl std::fmt::Display for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A decoded TCP segment: the fields the engine acts on. Inbound segments
/// are decoded from raw header bytes by the host; outbound ones are encoded
/// back. Mutations made by the attack proxy therefore reach the engine
/// exactly as they would a real stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg {
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Urgent pointer (doubles as the DSACK marker carrier, see
    /// [`DSACK_MARKER`]).
    pub urgent_ptr: u16,
    /// Payload length in bytes.
    pub payload_len: u32,
}

impl Seg {
    /// Packet-type classification of this segment.
    pub fn packet_type(&self) -> TcpPacketType {
        TcpPacketType::classify(self.flags, self.payload_len)
    }
}

/// Effects a [`Connection`] asks its host to perform. The engine is a pure
/// state machine: it never touches the network or timers directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnEvent {
    /// Transmit this segment to the peer.
    Transmit(Seg),
    /// (Re-)arm the retransmission timer to fire after this interval.
    ArmRto(SimDuration),
    /// Cancel the retransmission timer.
    CancelRto,
    /// Arm the TIME_WAIT (2·MSL) timer.
    ArmTimeWait(SimDuration),
    /// The three-way handshake completed (client side).
    Connected,
    /// The three-way handshake completed (server side).
    Accepted,
    /// `n` new in-order bytes were delivered to the application.
    DeliverData(u32),
    /// The peer's FIN arrived: it will send no more data.
    PeerClosed,
    /// The connection was torn down abnormally (RST received, handshake
    /// gave up, or retransmissions exhausted).
    Reset(&'static str),
    /// The connection closed cleanly and the socket can be reclaimed.
    Finished,
}

/// One TCP connection endpoint: RFC 793 lifecycle, New Reno congestion
/// control, RFC 6298 retransmission — parameterised by an implementation
/// [`Profile`].
#[derive(Debug, Clone)]
pub struct Connection {
    profile: Profile,
    state: State,

    // Send sequence space.
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    snd_wnd: u32,
    app_queue: u64,
    fin_pending: bool,
    fin_seq: Option<u32>,
    aborted: bool,
    psh_counter: u32,

    // Receive sequence space.
    rcv_nxt: u32,
    rcv_wnd: u32,
    ooo: Vec<(u32, u32)>,
    delivered: u64,

    // Congestion control (bytes).
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    recover: u32,
    /// After an RTO, unacknowledged data below this mark is retransmitted
    /// as acks advance (slow-start retransmission), so one timeout does not
    /// cost one backed-off RTO per lost segment.
    rtx_until: Option<u32>,
    /// SACK-style recovery cursor: next sequence to retransmit during fast
    /// recovery, clocked forward by arriving acks.
    rtx_cursor: u32,

    // Retransmission.
    srtt: Option<f64>,
    rttvar: f64,
    rto_base: SimDuration,
    backoff: u32,
    retries: u32,
    rtt_sample: Option<(u32, SimTime)>,

    // Counters for tests and metrics.
    segs_sent: u64,
    segs_received: u64,
    retransmits: u64,
    rsts_sent: u64,
}

impl Connection {
    /// Creates a client endpoint in `CLOSED`; call
    /// [`open`](Connection::open) to start the handshake.
    pub fn client(profile: Profile, iss: u32) -> Connection {
        Connection::with_state(profile, iss, State::Closed)
    }

    /// Creates a server endpoint ready to process an incoming SYN (the host
    /// spawns one per accepted connection from its listener).
    pub fn server(profile: Profile, iss: u32) -> Connection {
        Connection::with_state(profile, iss, State::Listen)
    }

    fn with_state(profile: Profile, iss: u32, state: State) -> Connection {
        let cwnd = (profile.initial_cwnd_segments * MSS) as f64;
        Connection {
            profile,
            state,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 65_535,
            app_queue: 0,
            fin_pending: false,
            fin_seq: None,
            aborted: false,
            psh_counter: 0,
            rcv_nxt: 0,
            rcv_wnd: 65_535,
            ooo: Vec::new(),
            delivered: 0,
            cwnd,
            ssthresh: f64::MAX,
            dupacks: 0,
            in_recovery: false,
            recover: iss,
            rtx_until: None,
            rtx_cursor: iss,
            srtt: None,
            rttvar: 0.0,
            rto_base: SimDuration::from_secs(1),
            backoff: 0,
            retries: 0,
            rtt_sample: None,
            segs_sent: 0,
            segs_received: 0,
            retransmits: 0,
            rsts_sent: 0,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Total in-order bytes delivered to the application.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Bytes sent but not yet acknowledged (includes a pending FIN).
    pub fn flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd as u32
    }

    /// Bytes queued by the application but not yet segmentized.
    pub fn app_queued(&self) -> u64 {
        self.app_queue
    }

    /// Segments transmitted (including retransmissions).
    pub fn segs_sent(&self) -> u64 {
        self.segs_sent
    }

    /// Segments received and processed.
    pub fn segs_received(&self) -> u64 {
        self.segs_received
    }

    /// Retransmissions performed.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// RSTs emitted.
    pub fn rsts_sent(&self) -> u64 {
        self.rsts_sent
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Starts the client handshake: sends a SYN and enters SYN_SENT.
    pub fn open(&mut self, out: &mut Vec<ConnEvent>) {
        debug_assert_eq!(self.state, State::Closed);
        self.state = State::SynSent;
        self.snd_nxt = self.iss.wrapping_add(1);
        self.emit(out, TcpFlags::SYN, self.iss, 0, 0);
        self.arm_rto(out);
    }

    /// Queues `bytes` of application data for sending.
    pub fn app_send(&mut self, bytes: u64, now: SimTime, out: &mut Vec<ConnEvent>) {
        self.app_queue = self.app_queue.saturating_add(bytes);
        self.try_send(now, out);
    }

    /// Graceful application close: a FIN is sent once all queued data has
    /// been segmentized and window space allows (which is exactly what
    /// wedges a Linux server in CLOSE_WAIT when its in-flight data can
    /// never be acknowledged — paper §VI-A.1).
    pub fn app_close(&mut self, now: SimTime, out: &mut Vec<ConnEvent>) {
        match self.state {
            State::Established | State::CloseWait | State::SynReceived => {
                self.fin_pending = true;
                self.try_send(now, out);
            }
            State::SynSent | State::Closed => {
                self.state = State::Closed;
                out.push(ConnEvent::CancelRto);
                out.push(ConnEvent::Finished);
            }
            _ => {}
        }
    }

    /// Abortive close: the application died. Linux sends a FIN and answers
    /// all further data with RSTs; Windows sends a single RST.
    pub fn app_abort(&mut self, now: SimTime, out: &mut Vec<ConnEvent>) {
        if matches!(self.state, State::Closed | State::TimeWait | State::Listen) {
            return;
        }
        // Unsent data is discarded either way.
        self.app_queue = 0;
        match self.profile.abort_style {
            AbortStyle::FinThenRst => {
                self.aborted = true;
                if matches!(
                    self.state,
                    State::Established | State::SynReceived | State::CloseWait
                ) && self.fin_seq.is_none()
                {
                    let fin = self.snd_nxt;
                    self.fin_seq = Some(fin);
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.emit(out, TcpFlags::FIN_ACK, fin, self.rcv_nxt, 0);
                    self.state = match self.state {
                        State::CloseWait => State::LastAck,
                        _ => State::FinWait1,
                    };
                    self.arm_rto(out);
                }
                let _ = now;
            }
            AbortStyle::RstOnly => {
                self.send_rst(out, self.snd_nxt);
                self.state = State::Closed;
                out.push(ConnEvent::CancelRto);
                out.push(ConnEvent::Reset("local abort"));
            }
        }
    }

    // ------------------------------------------------------------------
    // Timer interface
    // ------------------------------------------------------------------

    /// The retransmission timer fired.
    pub fn on_rto(&mut self, now: SimTime, out: &mut Vec<ConnEvent>) {
        match self.state {
            State::SynSent => {
                self.retries += 1;
                if self.retries > self.profile.syn_retries {
                    self.state = State::Closed;
                    out.push(ConnEvent::Reset("handshake timed out"));
                    return;
                }
                self.backoff += 1;
                self.emit(out, TcpFlags::SYN, self.iss, 0, 0);
                self.retransmits += 1;
                self.arm_rto(out);
            }
            State::SynReceived => {
                self.retries += 1;
                if self.retries > self.profile.syn_retries {
                    self.state = State::Closed;
                    out.push(ConnEvent::Reset("handshake timed out"));
                    return;
                }
                self.backoff += 1;
                self.emit(out, TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, 0);
                self.retransmits += 1;
                self.arm_rto(out);
            }
            State::Closed | State::Listen | State::TimeWait => {}
            _ => {
                if self.flight() == 0 {
                    // Persist timer: a zero advertised window with data
                    // waiting is probed (RFC 1122 §4.2.2.17), so a lost
                    // window update cannot deadlock the connection. The
                    // probe is a bare ACK; the peer's reply re-advertises
                    // its window.
                    if self.app_queue > 0
                        && self.snd_wnd == 0
                        && matches!(self.state, State::Established | State::CloseWait)
                    {
                        self.send_ack(out);
                        self.backoff = (self.backoff + 1).min(16);
                        self.arm_rto(out);
                    }
                    return;
                }
                self.retries += 1;
                if self.retries > self.profile.max_data_retries {
                    // Give up: the stack force-closes (Linux after 15
                    // retries, Windows after 5 — paper §VI-A.1).
                    self.state = State::Closed;
                    out.push(ConnEvent::CancelRto);
                    out.push(ConnEvent::Reset("retransmissions exhausted"));
                    return;
                }
                // Timeout congestion response: RFC 5681 §3.1.
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * MSS as f64);
                self.cwnd = MSS as f64;
                self.in_recovery = false;
                self.dupacks = 0;
                self.rtt_sample = None;
                self.backoff += 1;
                self.rtx_until = Some(self.snd_nxt);
                self.retransmit_head(now, out);
                self.arm_rto(out);
            }
        }
    }

    /// The TIME_WAIT (2·MSL) timer fired.
    pub fn on_time_wait_expiry(&mut self, out: &mut Vec<ConnEvent>) {
        if self.state == State::TimeWait {
            self.state = State::Closed;
            out.push(ConnEvent::Finished);
        }
    }

    // ------------------------------------------------------------------
    // Segment processing
    // ------------------------------------------------------------------

    /// Processes one arriving segment. This is the single entry point the
    /// host calls for every packet addressed to this connection.
    pub fn on_segment(&mut self, seg: Seg, now: SimTime, out: &mut Vec<ConnEvent>) {
        self.segs_received += 1;
        let ptype = seg.packet_type();

        // Invalid flag combinations go through the profile's policy first
        // (paper §VI-A.2).
        if ptype == TcpPacketType::Invalid {
            match self.profile.invalid_flags {
                InvalidFlagPolicy::Ignore => return,
                InvalidFlagPolicy::RstAlwaysWins => {
                    if seg.flags.rst {
                        self.process_rst(&seg, out);
                    }
                    return;
                }
                InvalidFlagPolicy::BestEffort => {
                    if seg.flags.count() == 0 {
                        // Linux 3.0.0 answers a null-flag packet with a
                        // duplicate acknowledgment — "a situation that is
                        // never valid" (paper §VI-A.2).
                        if self.synchronized() {
                            self.send_ack(out);
                        }
                        return;
                    }
                    // Otherwise fall through and interpret as best we can.
                }
            }
        }

        match self.state {
            State::Closed => {
                // RFC 793: anything to a closed connection gets a RST
                // (unless it is itself a RST).
                if !seg.flags.rst {
                    self.send_rst(out, seg.ack);
                }
            }
            State::Listen => self.on_segment_listen(seg, out),
            State::SynSent => self.on_segment_syn_sent(seg, now, out),
            _ => self.on_segment_synchronized(seg, ptype, now, out),
        }
    }

    fn on_segment_listen(&mut self, seg: Seg, out: &mut Vec<ConnEvent>) {
        if seg.flags.rst {
            return;
        }
        if seg.flags.syn && !seg.flags.ack {
            self.rcv_nxt = seg.seq.wrapping_add(1);
            self.snd_wnd = seg.window as u32;
            self.state = State::SynReceived;
            self.snd_nxt = self.iss.wrapping_add(1);
            self.emit(out, TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, 0);
            self.arm_rto(out);
        } else if seg.flags.ack {
            self.send_rst(out, seg.ack);
        }
    }

    fn on_segment_syn_sent(&mut self, seg: Seg, now: SimTime, out: &mut Vec<ConnEvent>) {
        let ack_acceptable = seg.flags.ack && seg.ack == self.snd_nxt;
        if seg.flags.rst {
            if ack_acceptable {
                self.state = State::Closed;
                out.push(ConnEvent::CancelRto);
                out.push(ConnEvent::Reset("reset during handshake"));
            }
            return;
        }
        if seg.flags.syn && seg.flags.ack {
            if !ack_acceptable {
                self.send_rst(out, seg.ack);
                return;
            }
            self.rcv_nxt = seg.seq.wrapping_add(1);
            self.snd_una = seg.ack;
            self.snd_wnd = seg.window as u32;
            self.retries = 0;
            self.backoff = 0;
            self.state = State::Established;
            out.push(ConnEvent::CancelRto);
            out.push(ConnEvent::Connected);
            self.send_ack(out);
            self.try_send(now, out);
        } else if seg.flags.syn {
            // Simultaneous open (the reflect attack lands here — paper
            // §IV-C's TCP Simultaneous Open example).
            self.rcv_nxt = seg.seq.wrapping_add(1);
            self.state = State::SynReceived;
            self.emit(out, TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, 0);
            self.arm_rto(out);
        }
    }

    fn on_segment_synchronized(
        &mut self,
        seg: Seg,
        _ptype: TcpPacketType,
        now: SimTime,
        out: &mut Vec<ConnEvent>,
    ) {
        // An aborted Linux endpoint answers any further data with RST
        // (paper §VI-A.1): the application is gone, the data undeliverable.
        if self.aborted && seg.payload_len > 0 {
            // The kernel still absorbs the segment's acknowledgment field
            // before rejecting the data: an arriving data packet whose ack
            // covers our FIN stops the FIN retransmission timer (so the
            // dead socket never provokes a pure duplicate ACK from the
            // peer).
            if seg.flags.ack && seq::gt(seg.ack, self.snd_una) && seq::le(seg.ack, self.snd_nxt) {
                self.snd_una = seg.ack;
                if let Some(fin) = self.fin_seq {
                    if seq::ge(seg.ack, fin.wrapping_add(1)) {
                        if self.state == State::FinWait1 {
                            self.state = State::FinWait2;
                        }
                        out.push(ConnEvent::CancelRto);
                    }
                }
            }
            // RFC 793: a reset in response to a segment with ACK set takes
            // its sequence number from that segment's acknowledgment field
            // (our own send sequence space as the peer sees it).
            let rst_seq = if seg.flags.ack { seg.ack } else { self.snd_nxt };
            self.send_rst(out, rst_seq);
            return;
        }

        // Step 1 (RFC 793 p. 69): sequence acceptability.
        let acceptable =
            seq::segment_acceptable(seg.seq, seg.payload_len, self.rcv_nxt, self.rcv_wnd);
        if !acceptable && !seg.flags.rst {
            // Old duplicate or out-of-window: acknowledge current state.
            self.send_dupack_for_old(out);
            return;
        }

        // Step 2: RST processing — any in-window RST kills the connection
        // (the brute-force Reset attack, paper §VI-A.4).
        if seg.flags.rst {
            self.process_rst(&seg, out);
            return;
        }

        // Step 4: SYN in window resets a synchronized connection
        // (the SYN-Reset attack, paper §VI-A.5).
        if seg.flags.syn {
            self.send_rst(out, seg.ack);
            self.state = State::Closed;
            out.push(ConnEvent::CancelRto);
            out.push(ConnEvent::Reset("in-window SYN"));
            return;
        }

        // Step 5: ACK processing. A valid ACK completes the server side of
        // the handshake first.
        if self.state == State::SynReceived && seg.flags.ack {
            if seg.ack == self.snd_nxt {
                self.snd_una = seg.ack;
                self.snd_wnd = seg.window as u32;
                self.retries = 0;
                self.backoff = 0;
                self.state = State::Established;
                out.push(ConnEvent::CancelRto);
                out.push(ConnEvent::Accepted);
            } else {
                self.send_rst(out, seg.ack);
                return;
            }
        }
        if seg.flags.ack && !self.process_ack(&seg, now, out) {
            return;
        }

        // Step 6: payload processing.
        if seg.payload_len > 0 {
            self.process_data(&seg, out);
        }

        // Step 7: FIN processing.
        if seg.flags.fin {
            self.process_fin(&seg, out);
        }

        self.try_send(now, out);
    }

    fn process_rst(&mut self, seg: &Seg, out: &mut Vec<ConnEvent>) {
        // In synchronized states a RST anywhere in the receive window is
        // honoured (RFC 793; the window-interval brute force of [Watson
        // 2004] exploits exactly this).
        let in_window = seq::in_window(seg.seq, self.rcv_nxt, self.rcv_wnd.max(1));
        if in_window || self.state == State::SynSent {
            self.state = State::Closed;
            out.push(ConnEvent::CancelRto);
            out.push(ConnEvent::Reset("peer reset"));
        }
    }

    /// Returns false if processing must stop (futuristic ACK).
    fn process_ack(&mut self, seg: &Seg, now: SimTime, out: &mut Vec<ConnEvent>) -> bool {
        let ack = seg.ack;
        if seq::gt(ack, self.snd_nxt) {
            // Acks data we never sent: RFC 793 says drop and re-ack.
            self.send_ack(out);
            return false;
        }

        if seq::gt(ack, self.snd_una) {
            let newly = ack.wrapping_sub(self.snd_una);
            self.snd_una = ack;
            self.snd_wnd = seg.window as u32;
            self.retries = 0;
            self.backoff = 0;

            if let Some((target, sent_at)) = self.rtt_sample {
                if seq::ge(ack, target) {
                    let sample = now.since(sent_at).as_secs_f64();
                    self.update_rtt(sample);
                    self.rtt_sample = None;
                }
            }

            if self.in_recovery {
                if seq::ge(ack, self.recover) {
                    // Full ack: leave fast recovery (RFC 6582).
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // Partial ack: retransmit the next hole (unless the
                    // SACK cursor already has), deflate.
                    if seq::ge(self.snd_una, self.rtx_cursor) || !self.profile.sack_recovery {
                        self.retransmit_head(now, out);
                        self.rtx_cursor = self.snd_una.wrapping_add(MSS);
                    } else {
                        self.sack_recovery_step(out);
                    }
                    self.cwnd = (self.cwnd - newly as f64 + MSS as f64).max(MSS as f64);
                    self.arm_rto(out);
                }
            } else {
                self.grow_cwnd();
                // Slow-start retransmission after a timeout: keep
                // retransmitting the next hole while acks advance below
                // the timeout mark.
                if let Some(mark) = self.rtx_until {
                    if seq::lt(self.snd_una, mark) && seq::lt(ack, mark) {
                        self.retransmit_head(now, out);
                        if self.cwnd >= 2.0 * MSS as f64
                            && seq::lt(self.snd_una.wrapping_add(MSS), mark)
                        {
                            self.retransmit_at(self.snd_una.wrapping_add(MSS), out);
                        }
                        self.arm_rto(out);
                    } else {
                        self.rtx_until = None;
                    }
                }
            }
            self.dupacks = 0;

            // Did this ack our FIN?
            if let Some(fin) = self.fin_seq {
                if seq::ge(ack, fin.wrapping_add(1)) {
                    self.on_fin_acked(out);
                }
            }

            if self.flight() == 0 {
                out.push(ConnEvent::CancelRto);
            } else {
                self.arm_rto(out);
            }
        } else if ack == self.snd_una {
            // Window update (RFC 793's SND.WL1/WL2 rule, simplified): a
            // same-ack segment with a different window is an update, not a
            // duplicate — and it can unblock a zero-window stall.
            let window_changed = self.snd_wnd != seg.window as u32;
            if window_changed {
                self.snd_wnd = seg.window as u32;
                self.try_send(now, out);
            }
            let pure_dup = !window_changed
                && seg.payload_len == 0
                && !seg.flags.syn
                && !seg.flags.fin
                && self.flight() > 0;
            if pure_dup {
                let marker = if seg.flags.urg { 0 } else { seg.urgent_ptr };
                // Windows 95 grows its window on *every* ack, duplicates
                // included (paper §VI-A.3): one full segment per
                // acknowledgment, with no duplicate or outstanding-data
                // check — Savage et al.'s DupACK-spoofing precondition.
                if self.profile.naive_ack_counting {
                    self.cwnd = (self.cwnd + MSS as f64).min(65_535.0 + MSS as f64);
                    self.try_send(now, out);
                }
                // RFC 6675 stacks only treat a duplicate as a loss
                // indication when it reports a genuine reception hole; a
                // pre-RFC-2581 stack has no duplicate-ack loss response
                // at all.
                let counts = self.profile.fast_retransmit
                    && if self.profile.sack_loss_evidence {
                        marker == SACK_MARKER
                    } else {
                        marker != DSACK_MARKER
                    };
                if counts {
                    self.dupacks += 1;
                    if self.dupacks == 3 && !self.in_recovery {
                        self.enter_fast_recovery(now, out);
                    } else if self.in_recovery && self.dupacks > 3 {
                        if self.profile.sack_recovery {
                            // SACK recovery: retransmissions clocked by
                            // evidence-bearing acks; no blind inflation.
                            self.sack_recovery_step(out);
                        } else {
                            // Reno inflation: every further duplicate
                            // clocks out a brand-new segment — the lever
                            // behind duplicate-ACK spoofing (§VI-A.3).
                            self.cwnd += MSS as f64;
                            self.try_send(now, out);
                        }
                    }
                } else if self.in_recovery && marker == SACK_MARKER {
                    self.sack_recovery_step(out);
                }
            }
        }
        true
    }

    fn enter_fast_recovery(&mut self, now: SimTime, out: &mut Vec<ConnEvent>) {
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * MSS as f64);
        self.recover = self.snd_nxt;
        self.in_recovery = true;
        self.retransmit_head(now, out);
        self.rtx_cursor = self.snd_una.wrapping_add(MSS);
        if self.profile.harsh_dupack_response {
            // The rate limiter reads a duplicate-ACK burst as severe loss
            // and collapses the window outright (Windows 8.1).
            self.cwnd = 2.0 * MSS as f64;
            self.ssthresh = self.cwnd;
        } else {
            self.cwnd = self.ssthresh + 3.0 * MSS as f64;
        }
        self.rtt_sample = None;
        self.arm_rto(out);
    }

    /// During fast recovery, SACK-capable stacks use each arriving ack to
    /// clock out the next retransmission below the recovery point, healing
    /// a whole loss burst in about one round trip.
    fn sack_recovery_step(&mut self, out: &mut Vec<ConnEvent>) {
        if !self.profile.sack_recovery || !self.in_recovery {
            return;
        }
        if seq::lt(self.rtx_cursor, self.recover) && seq::ge(self.rtx_cursor, self.snd_una) {
            self.retransmit_at(self.rtx_cursor, out);
            self.rtx_cursor = self.rtx_cursor.wrapping_add(MSS);
        }
    }

    fn process_data(&mut self, seg: &Seg, out: &mut Vec<ConnEvent>) {
        if !matches!(
            self.state,
            State::Established | State::FinWait1 | State::FinWait2
        ) {
            // Data after the peer said it was done, or before establishment:
            // just re-ack.
            self.send_ack(out);
            return;
        }
        let end = seg.seq.wrapping_add(seg.payload_len);
        if seq::le(end, self.rcv_nxt) {
            // Entirely old: a duplicate. DSACK-capable receivers mark the
            // ack they generate so the sender can discount it.
            self.send_dupack_for_old(out);
            return;
        }
        if seq::le(seg.seq, self.rcv_nxt) {
            // In order (possibly overlapping the left edge).
            let new_bytes = end.wrapping_sub(self.rcv_nxt);
            self.rcv_nxt = end;
            self.delivered += new_bytes as u64;
            out.push(ConnEvent::DeliverData(new_bytes));
            self.merge_ooo(out);
            self.send_ack(out);
        } else {
            // A hole: buffer and emit a genuine duplicate ack, carrying
            // SACK evidence of the hole on SACK-capable receivers.
            self.store_ooo(seg.seq, seg.payload_len);
            if self.profile.dsack {
                self.send_marked_ack(out, SACK_MARKER);
            } else {
                self.send_ack(out);
            }
        }
    }

    fn process_fin(&mut self, seg: &Seg, out: &mut Vec<ConnEvent>) {
        let fin_seq = seg.seq.wrapping_add(seg.payload_len);
        if fin_seq != self.rcv_nxt {
            // Out-of-order FIN; it will be retransmitted in order.
            return;
        }
        self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
        // A busy sender lets the FIN's acknowledgment ride on its own
        // outgoing (re)transmissions — they all carry the current
        // acknowledgment number — rather than emitting a pure ACK. This
        // wire-level detail matters to SNAKE: the aborted client is never
        // moved to FIN_WAIT_2 by the tracker, so every RST it emits falls
        // under the single (FIN_WAIT_1, RST) strategy key that makes the
        // CLOSE_WAIT attack discoverable.
        if self.flight() == 0 && self.app_queue == 0 {
            self.send_ack(out);
        }
        match self.state {
            State::Established => {
                self.state = State::CloseWait;
                out.push(ConnEvent::PeerClosed);
            }
            State::FinWait1 => {
                // Our FIN not yet acked: simultaneous close.
                self.state = State::Closing;
            }
            State::FinWait2 => {
                self.state = State::TimeWait;
                out.push(ConnEvent::CancelRto);
                out.push(ConnEvent::ArmTimeWait(self.profile.time_wait));
            }
            _ => {}
        }
    }

    fn on_fin_acked(&mut self, out: &mut Vec<ConnEvent>) {
        match self.state {
            State::FinWait1 => self.state = State::FinWait2,
            State::Closing => {
                self.state = State::TimeWait;
                out.push(ConnEvent::CancelRto);
                out.push(ConnEvent::ArmTimeWait(self.profile.time_wait));
            }
            State::LastAck => {
                self.state = State::Closed;
                out.push(ConnEvent::CancelRto);
                out.push(ConnEvent::Finished);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    /// Sends as much queued data as the congestion and flow-control windows
    /// allow, then the FIN if one is pending and fits.
    fn try_send(&mut self, now: SimTime, out: &mut Vec<ConnEvent>) {
        if !matches!(self.state, State::Established | State::CloseWait) {
            return;
        }
        let had_flight = self.flight() > 0;
        let mut sent_any = false;
        loop {
            let wnd = (self.cwnd as u32).min(self.snd_wnd);
            let flight = self.flight();
            if flight >= wnd {
                break;
            }
            let budget = (wnd - flight) as u64;
            let chunk = MSS.min(self.app_queue.min(budget) as u32);
            if chunk == 0 {
                break;
            }
            let seq_no = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk);
            self.app_queue -= chunk as u64;
            self.psh_counter += 1;
            // PSH on every 10th segment and on a buffer flush, so PSH+ACK
            // segments "occur only occasionally in the data stream"
            // (paper §VI-A.6).
            let psh = self.psh_counter.is_multiple_of(10) || self.app_queue == 0;
            let flags = if psh {
                TcpFlags::PSH_ACK
            } else {
                TcpFlags::ACK
            };
            self.emit(out, flags, seq_no, self.rcv_nxt, chunk);
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((self.snd_nxt, now));
            }
            sent_any = true;
        }
        // FIN once the queue is fully segmentized and the window has room.
        if self.fin_pending
            && self.fin_seq.is_none()
            && self.app_queue == 0
            && self.flight() < (self.cwnd as u32).min(self.snd_wnd).max(1)
        {
            let fin = self.snd_nxt;
            self.fin_seq = Some(fin);
            self.fin_pending = false;
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.emit(out, TcpFlags::FIN_ACK, fin, self.rcv_nxt, 0);
            self.state = match self.state {
                State::CloseWait => State::LastAck,
                _ => State::FinWait1,
            };
            sent_any = true;
        }
        if sent_any && !had_flight {
            self.arm_rto(out);
        }
        // Zero-window stall with data pending: arm the persist timer.
        if !sent_any
            && !had_flight
            && self.app_queue > 0
            && self.snd_wnd == 0
            && self.fin_seq.is_none()
        {
            self.arm_rto(out);
        }
    }

    /// Retransmits one segment from the head of the unacknowledged region.
    fn retransmit_head(&mut self, _now: SimTime, out: &mut Vec<ConnEvent>) {
        let una = self.snd_una;
        if let Some(fin) = self.fin_seq {
            if una == fin {
                self.emit(out, TcpFlags::FIN_ACK, fin, self.rcv_nxt, 0);
                self.retransmits += 1;
                return;
            }
        }
        let outstanding_data = match self.fin_seq {
            Some(fin) => fin.wrapping_sub(una),
            None => self.flight(),
        };
        let chunk = MSS.min(outstanding_data);
        if chunk == 0 {
            return;
        }
        self.emit(out, TcpFlags::ACK, una, self.rcv_nxt, chunk);
        self.retransmits += 1;
    }

    /// Retransmits one MSS starting at `from` if it lies within the
    /// unacknowledged data region.
    fn retransmit_at(&mut self, from: u32, out: &mut Vec<ConnEvent>) {
        let data_end = self.fin_seq.unwrap_or(self.snd_nxt);
        if !seq::lt(from, data_end) {
            return;
        }
        let chunk = MSS.min(data_end.wrapping_sub(from));
        if chunk == 0 {
            return;
        }
        self.emit(out, TcpFlags::ACK, from, self.rcv_nxt, chunk);
        self.retransmits += 1;
    }

    fn grow_cwnd(&mut self) {
        let mss = MSS as f64;
        if self.cwnd < self.ssthresh {
            self.cwnd += mss;
        } else {
            self.cwnd += (mss * mss / self.cwnd).max(1.0);
        }
        // Cap at the flow-control window plus one MSS of headroom.
        self.cwnd = self.cwnd.min(65_535.0 + mss);
    }

    fn update_rtt(&mut self, sample: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample);
            }
        }
        let rto = self.srtt.expect("just set") + 4.0 * self.rttvar;
        let rto = SimDuration::from_secs_f64(rto);
        self.rto_base = rto.max(self.profile.min_rto).min(self.profile.max_rto);
    }

    fn arm_rto(&mut self, out: &mut Vec<ConnEvent>) {
        let rto = self
            .rto_base
            .saturating_mul(1u64 << self.backoff.min(16))
            .max(self.profile.min_rto)
            .min(self.profile.max_rto);
        out.push(ConnEvent::ArmRto(rto));
    }

    fn send_ack(&mut self, out: &mut Vec<ConnEvent>) {
        self.emit(out, TcpFlags::ACK, self.snd_nxt, self.rcv_nxt, 0);
    }

    /// Acknowledgment for an old duplicate segment; marked with the DSACK
    /// marker on profiles that support it.
    fn send_dupack_for_old(&mut self, out: &mut Vec<ConnEvent>) {
        let marker = if self.profile.dsack { DSACK_MARKER } else { 0 };
        self.send_marked_ack(out, marker);
    }

    fn send_marked_ack(&mut self, out: &mut Vec<ConnEvent>, marker: u16) {
        let seg = Seg {
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags: TcpFlags::ACK,
            window: self.rcv_wnd as u16,
            urgent_ptr: marker,
            payload_len: 0,
        };
        self.segs_sent += 1;
        out.push(ConnEvent::Transmit(seg));
    }

    fn send_rst(&mut self, out: &mut Vec<ConnEvent>, seq_no: u32) {
        self.rsts_sent += 1;
        self.emit(out, TcpFlags::RST_ACK, seq_no, self.rcv_nxt, 0);
    }

    fn emit(&mut self, out: &mut Vec<ConnEvent>, flags: TcpFlags, seq_no: u32, ack: u32, len: u32) {
        self.segs_sent += 1;
        out.push(ConnEvent::Transmit(Seg {
            seq: seq_no,
            ack,
            flags,
            window: self.rcv_wnd as u16,
            urgent_ptr: 0,
            payload_len: len,
        }));
    }

    // ------------------------------------------------------------------
    // Out-of-order buffer
    // ------------------------------------------------------------------

    fn store_ooo(&mut self, seq_no: u32, len: u32) {
        // Bounded buffer: the receive window is 64 KiB = 45 segments.
        if self.ooo.len() >= 64 {
            return;
        }
        if !self.ooo.iter().any(|&(s, l)| s == seq_no && l == len) {
            self.ooo.push((seq_no, len));
        }
    }

    fn merge_ooo(&mut self, out: &mut Vec<ConnEvent>) {
        loop {
            let mut advanced = false;
            self.ooo.retain(|&(s, l)| {
                // Drop fully-old entries.
                !seq::le(s.wrapping_add(l), self.rcv_nxt)
            });
            for i in 0..self.ooo.len() {
                let (s, l) = self.ooo[i];
                if seq::le(s, self.rcv_nxt) {
                    let end = s.wrapping_add(l);
                    if seq::gt(end, self.rcv_nxt) {
                        let new_bytes = end.wrapping_sub(self.rcv_nxt);
                        self.rcv_nxt = end;
                        self.delivered += new_bytes as u64;
                        out.push(ConnEvent::DeliverData(new_bytes));
                        advanced = true;
                    }
                    self.ooo.swap_remove(i);
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
    }

    fn synchronized(&self) -> bool {
        !matches!(self.state, State::Closed | State::Listen | State::SynSent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_packet::tcp::TcpFlags;

    fn profile() -> Profile {
        Profile::linux_3_13()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Drains Transmit events from an event list.
    fn transmits(events: &[ConnEvent]) -> Vec<Seg> {
        events
            .iter()
            .filter_map(|e| match e {
                ConnEvent::Transmit(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    /// Runs a full handshake between two in-memory connections, returning
    /// them in ESTABLISHED.
    fn established_pair() -> (Connection, Connection) {
        let mut client = Connection::client(profile(), 1_000);
        let mut server = Connection::server(profile(), 9_000);
        let mut out = Vec::new();

        client.open(&mut out);
        let syn = transmits(&out)[0];
        assert_eq!(syn.packet_type(), TcpPacketType::Syn);
        out.clear();

        server.on_segment(syn, t(10), &mut out);
        let synack = transmits(&out)[0];
        assert_eq!(synack.packet_type(), TcpPacketType::SynAck);
        assert_eq!(server.state(), State::SynReceived);
        out.clear();

        client.on_segment(synack, t(20), &mut out);
        assert_eq!(client.state(), State::Established);
        assert!(out.contains(&ConnEvent::Connected));
        let ack = transmits(&out)[0];
        out.clear();

        server.on_segment(ack, t(30), &mut out);
        assert_eq!(server.state(), State::Established);
        assert!(out.contains(&ConnEvent::Accepted));
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        let (c, s) = established_pair();
        assert_eq!(c.state(), State::Established);
        assert_eq!(s.state(), State::Established);
    }

    #[test]
    fn handshake_ack_numbers_are_exact() {
        let mut client = Connection::client(profile(), 1_000);
        let mut out = Vec::new();
        client.open(&mut out);
        out.clear();
        // SYN+ACK with the wrong ack number is answered with RST, not
        // accepted.
        let bad = Seg {
            seq: 9_000,
            ack: 2_000,
            flags: TcpFlags::SYN_ACK,
            window: 65_535,
            urgent_ptr: 0,
            payload_len: 0,
        };
        client.on_segment(bad, t(10), &mut out);
        assert_eq!(client.state(), State::SynSent);
        assert_eq!(transmits(&out)[0].packet_type(), TcpPacketType::Rst);
    }

    #[test]
    fn data_transfer_delivers_in_order() {
        let (mut client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(3_000, t(40), &mut out);
        let segs = transmits(&out);
        assert_eq!(segs.len(), 3, "3000 bytes = 2 full MSS + remainder");
        assert_eq!(segs[0].payload_len, MSS);
        assert_eq!(segs[2].payload_len, 3_000 - 2 * MSS);
        assert!(segs[2].flags.psh, "buffer flush sets PSH");
        out.clear();

        for seg in segs {
            client.on_segment(seg, t(50), &mut out);
        }
        assert_eq!(client.delivered(), 3_000);
        let acks = transmits(&out);
        assert_eq!(acks.len(), 3, "every data segment is acked");
        assert_eq!(acks[2].ack, segs_end(&server));
        out.clear();

        for ack in acks {
            server.on_segment(ack, t(60), &mut out);
        }
        assert_eq!(server.flight(), 0);
        assert!(out.contains(&ConnEvent::CancelRto));
    }

    fn segs_end(server: &Connection) -> u32 {
        server.snd_nxt
    }

    #[test]
    fn out_of_order_data_buffers_and_merges() {
        let (mut client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(3 * MSS as u64, t(40), &mut out);
        let segs = transmits(&out);
        out.clear();

        // Deliver 2nd and 3rd first: buffered, dup acks emitted.
        client.on_segment(segs[1], t(50), &mut out);
        client.on_segment(segs[2], t(51), &mut out);
        assert_eq!(client.delivered(), 0);
        let acks = transmits(&out);
        assert_eq!(acks[0].ack, segs[0].seq, "dup ack points at the hole");
        out.clear();

        // The hole fills; everything is delivered at once.
        client.on_segment(segs[0], t(52), &mut out);
        assert_eq!(client.delivered(), 3 * MSS as u64);
        let final_ack = transmits(&out).last().copied().unwrap();
        assert_eq!(final_ack.ack, segs[2].seq.wrapping_add(MSS));
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let (mut client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(10 * MSS as u64, t(40), &mut out);
        let segs = transmits(&out);
        out.clear();

        // Lose segment 0; deliver 1..3 → three dup acks.
        let mut dupacks = Vec::new();
        for seg in &segs[1..4] {
            client.on_segment(*seg, t(50), &mut out);
        }
        for a in transmits(&out) {
            dupacks.push(a);
        }
        out.clear();
        assert!(dupacks.iter().all(|a| a.ack == segs[0].seq));

        let cwnd_before = server.cwnd();
        for a in dupacks {
            server.on_segment(a, t(60), &mut out);
        }
        let rtx = transmits(&out);
        assert_eq!(rtx.len(), 1, "exactly one fast retransmit");
        assert_eq!(rtx[0].seq, segs[0].seq);
        assert_eq!(server.retransmits(), 1);
        assert!(server.cwnd() < cwnd_before, "window halved-ish on loss");
    }

    #[test]
    fn dsack_marked_dupacks_do_not_trigger_fast_retransmit() {
        // Linux receivers mark acks for fully-old duplicates; a Linux
        // sender then never counts them as loss. This is the mechanism
        // that keeps Linux fair under the duplicate-PSH+ACK attack that
        // degrades Windows 8.1 (paper §VI-A.6).
        let (mut client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(10 * MSS as u64, t(40), &mut out);
        let segs = transmits(&out);
        out.clear();

        // Deliver segment 0, then 9 duplicate copies of it (what the
        // proxy's duplicate-10x strategy produces).
        client.on_segment(segs[0], t(50), &mut out);
        for _ in 0..9 {
            client.on_segment(segs[0], t(51), &mut out);
        }
        let acks = transmits(&out);
        assert_eq!(acks.len(), 10);
        assert!(
            acks[1..].iter().all(|a| a.urgent_ptr == DSACK_MARKER),
            "DSACK-marked"
        );
        out.clear();

        for a in acks {
            server.on_segment(a, t(60), &mut out);
        }
        assert_eq!(server.retransmits(), 0, "no spurious fast retransmit");
    }

    #[test]
    fn unmarked_dupack_burst_halves_windows_81_window() {
        let win = Profile::windows_8_1();
        let mut client = Connection::client(win.clone(), 1_000);
        let mut server = Connection::server(win, 9_000);
        let mut out = Vec::new();
        client.open(&mut out);
        let syn = transmits(&out)[0];
        out.clear();
        server.on_segment(syn, t(1), &mut out);
        let synack = transmits(&out)[0];
        out.clear();
        client.on_segment(synack, t(2), &mut out);
        let ack = transmits(&out)[0];
        out.clear();
        server.on_segment(ack, t(3), &mut out);
        out.clear();

        server.app_send(10 * MSS as u64, t(40), &mut out);
        let segs = transmits(&out);
        out.clear();

        client.on_segment(segs[0], t(50), &mut out);
        for _ in 0..9 {
            client.on_segment(segs[0], t(51), &mut out);
        }
        let acks = transmits(&out);
        assert!(
            acks[1..].iter().all(|a| a.urgent_ptr == 0),
            "Windows does not mark"
        );
        out.clear();

        let cwnd_before = server.cwnd();
        for a in &acks {
            server.on_segment(*a, t(60), &mut out);
        }
        assert!(server.retransmits() >= 1, "spurious fast retransmit");
        // A full acknowledgment ends the (spurious) recovery with the
        // window genuinely halved — Windows has no undo mechanism.
        let last = segs.last().unwrap();
        let full = Seg {
            seq: acks[0].seq,
            ack: last.seq.wrapping_add(last.payload_len),
            flags: TcpFlags::ACK,
            window: 65_535,
            urgent_ptr: 0,
            payload_len: 0,
        };
        server.on_segment(full, t(70), &mut out);
        assert!(server.cwnd() < cwnd_before, "window permanently reduced");
    }

    #[test]
    fn naive_ack_counting_grows_on_duplicates() {
        let w95 = Profile::windows_95();
        let mut server = Connection::server(w95.clone(), 9_000);
        let mut client = Connection::client(w95, 1_000);
        let mut out = Vec::new();
        client.open(&mut out);
        let syn = transmits(&out)[0];
        out.clear();
        server.on_segment(syn, t(1), &mut out);
        let synack = transmits(&out)[0];
        out.clear();
        client.on_segment(synack, t(2), &mut out);
        let ack = transmits(&out)[0];
        out.clear();
        server.on_segment(ack, t(3), &mut out);
        out.clear();

        server.app_send(100 * MSS as u64, t(10), &mut out);
        let segs = transmits(&out);
        out.clear();
        client.on_segment(segs[0], t(20), &mut out);
        let first_ack = transmits(&out)[0];
        out.clear();

        server.on_segment(first_ack, t(30), &mut out);
        out.clear();
        let before = server.cwnd();
        // Two duplicated copies of the same ack (the proxy's duplicate
        // strategy): a naïve stack grows its window for each.
        server.on_segment(first_ack, t(31), &mut out);
        server.on_segment(first_ack, t(32), &mut out);
        assert!(
            server.cwnd() > before,
            "duplicates inflate the window on Windows 95"
        );

        // Whereas Linux ignores them entirely.
        out.clear();
        let (mut lclient, mut lserver) = established_pair();
        lserver.app_send(100 * MSS as u64, t(10), &mut out);
        let lsegs = transmits(&out);
        out.clear();
        lclient.on_segment(lsegs[0], t(20), &mut out);
        let lack = transmits(&out)[0];
        out.clear();
        lserver.on_segment(lack, t(30), &mut out);
        let lbefore = lserver.cwnd();
        lserver.on_segment(lack, t(31), &mut out);
        lserver.on_segment(lack, t(32), &mut out);
        assert_eq!(lserver.cwnd(), lbefore);
    }

    #[test]
    fn in_window_rst_resets_connection() {
        let (mut client, _server) = established_pair();
        let mut out = Vec::new();
        let rst = Seg {
            seq: client.rcv_nxt,
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            urgent_ptr: 0,
            payload_len: 0,
        };
        client.on_segment(rst, t(50), &mut out);
        assert_eq!(client.state(), State::Closed);
        assert!(out.iter().any(|e| matches!(e, ConnEvent::Reset(_))));
    }

    #[test]
    fn out_of_window_rst_is_ignored() {
        let (mut client, _server) = established_pair();
        let mut out = Vec::new();
        let rst = Seg {
            seq: client.rcv_nxt.wrapping_add(100_000),
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            urgent_ptr: 0,
            payload_len: 0,
        };
        client.on_segment(rst, t(50), &mut out);
        assert_eq!(client.state(), State::Established);
    }

    #[test]
    fn in_window_syn_resets_connection() {
        // The SYN-Reset attack (paper §VI-A.5): every implementation is
        // vulnerable because the behaviour is RFC-mandated.
        for p in Profile::all() {
            let mut client = Connection::client(p.clone(), 1_000);
            let mut server = Connection::server(p, 9_000);
            let mut out = Vec::new();
            client.open(&mut out);
            let syn = transmits(&out)[0];
            out.clear();
            server.on_segment(syn, t(1), &mut out);
            let synack = transmits(&out)[0];
            out.clear();
            client.on_segment(synack, t(2), &mut out);
            out.clear();

            let spoofed_syn = Seg {
                seq: client.rcv_nxt.wrapping_add(5),
                ack: 0,
                flags: TcpFlags::SYN,
                window: 65_535,
                urgent_ptr: 0,
                payload_len: 0,
            };
            client.on_segment(spoofed_syn, t(3), &mut out);
            assert_eq!(client.state(), State::Closed, "{}", client.profile.name);
        }
    }

    #[test]
    fn null_flag_packet_gets_dupack_on_best_effort_only() {
        let null = |rcv: u32| Seg {
            seq: rcv,
            ack: 0,
            flags: TcpFlags::none(),
            window: 0,
            urgent_ptr: 0,
            payload_len: 0,
        };
        // Linux 3.0.0 responds (fingerprintable)...
        let mut c300 = Connection::client(Profile::linux_3_0_0(), 1_000);
        c300.state = State::Established;
        let mut out = Vec::new();
        c300.on_segment(null(c300.rcv_nxt), t(1), &mut out);
        assert_eq!(transmits(&out).len(), 1, "Linux 3.0.0 answers null flags");

        // ...Linux 3.13 does not.
        let mut c313 = Connection::client(Profile::linux_3_13(), 1_000);
        c313.state = State::Established;
        out.clear();
        c313.on_segment(null(c313.rcv_nxt), t(1), &mut out);
        assert!(transmits(&out).is_empty(), "Linux 3.13 ignores null flags");

        // Windows 8.1 ignores it too (no RST flag present).
        let mut w81 = Connection::client(Profile::windows_8_1(), 1_000);
        w81.state = State::Established;
        out.clear();
        w81.on_segment(null(w81.rcv_nxt), t(1), &mut out);
        assert!(transmits(&out).is_empty());
    }

    #[test]
    fn windows_81_processes_rst_with_nonsense_flags() {
        let mut w81 = Connection::client(Profile::windows_8_1(), 1_000);
        w81.state = State::Established;
        let mut out = Vec::new();
        let monster = Seg {
            seq: w81.rcv_nxt,
            ack: 0,
            flags: TcpFlags {
                syn: true,
                fin: true,
                rst: true,
                ack: true,
                ..TcpFlags::none()
            },
            window: 0,
            urgent_ptr: 0,
            payload_len: 0,
        };
        w81.on_segment(monster, t(1), &mut out);
        assert_eq!(
            w81.state(),
            State::Closed,
            "RST wins regardless of other flags"
        );

        // Linux 3.13 ignores the same packet.
        let mut c313 = Connection::client(Profile::linux_3_13(), 1_000);
        c313.state = State::Established;
        out.clear();
        c313.on_segment(monster, t(1), &mut out);
        assert_eq!(c313.state(), State::Established);
    }

    #[test]
    fn graceful_close_full_lifecycle() {
        let (mut client, mut server) = established_pair();
        let mut out = Vec::new();

        // Client closes; FIN travels; server enters CLOSE_WAIT.
        client.app_close(t(100), &mut out);
        let fin = transmits(&out)[0];
        assert_eq!(fin.packet_type(), TcpPacketType::FinAck);
        assert_eq!(client.state(), State::FinWait1);
        out.clear();

        server.on_segment(fin, t(110), &mut out);
        assert_eq!(server.state(), State::CloseWait);
        assert!(out.contains(&ConnEvent::PeerClosed));
        let ack = transmits(&out)[0];
        out.clear();

        client.on_segment(ack, t(120), &mut out);
        assert_eq!(client.state(), State::FinWait2);
        out.clear();

        // Server closes; its FIN completes the exchange.
        server.app_close(t(130), &mut out);
        let fin2 = transmits(&out)[0];
        assert_eq!(server.state(), State::LastAck);
        out.clear();

        client.on_segment(fin2, t(140), &mut out);
        assert_eq!(client.state(), State::TimeWait);
        assert!(out.iter().any(|e| matches!(e, ConnEvent::ArmTimeWait(_))));
        let last_ack = transmits(&out)[0];
        out.clear();

        server.on_segment(last_ack, t(150), &mut out);
        assert_eq!(server.state(), State::Closed);
        assert!(out.contains(&ConnEvent::Finished));

        client.on_time_wait_expiry(&mut out);
        assert_eq!(client.state(), State::Closed);
    }

    #[test]
    fn linux_abort_sends_fin_then_rsts_data() {
        let (mut client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(5 * MSS as u64, t(40), &mut out);
        let segs = transmits(&out);
        out.clear();

        // The client app dies mid-transfer.
        client.app_abort(t(50), &mut out);
        let fin = transmits(&out)[0];
        assert_eq!(fin.packet_type(), TcpPacketType::FinAck);
        assert_eq!(client.state(), State::FinWait1);
        out.clear();

        // Data still in flight arrives: each gets a RST.
        client.on_segment(segs[0], t(60), &mut out);
        client.on_segment(segs[1], t(61), &mut out);
        let replies = transmits(&out);
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|r| r.flags.rst));
        assert_eq!(client.rsts_sent(), 2);
    }

    #[test]
    fn windows_abort_sends_single_rst() {
        let w81 = Profile::windows_8_1();
        let mut conn = Connection::client(w81, 1_000);
        conn.state = State::Established;
        let mut out = Vec::new();
        conn.app_abort(t(50), &mut out);
        let pkts = transmits(&out);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].flags.rst);
        assert_eq!(conn.state(), State::Closed);
    }

    #[test]
    fn close_wait_sticks_while_data_unacknowledged() {
        // The CLOSE_WAIT resource-exhaustion precondition (paper §VI-A.1):
        // a server with a window of unacknowledged data that receives FIN
        // and then closes cannot send its own FIN, so it stays in
        // CLOSE_WAIT.
        let (mut client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(20 * MSS as u64, t(40), &mut out);
        assert!(server.flight() > 0);
        out.clear();

        // Client aborts; its FIN reaches the server.
        client.app_abort(t(50), &mut out);
        let fin = transmits(&out)[0];
        out.clear();
        server.on_segment(fin, t(60), &mut out);
        assert_eq!(server.state(), State::CloseWait);
        out.clear();

        // Server app closes. Its FIN cannot be sent: a full window of data
        // is outstanding and will never be acked (the client RSTs are
        // being dropped by the attack).
        server.app_close(t(70), &mut out);
        assert_eq!(server.state(), State::CloseWait, "stuck in CLOSE_WAIT");
        assert!(
            transmits(&out).iter().all(|s| !s.flags.fin),
            "no FIN while data pending"
        );

        // RTOs fire; the server keeps retransmitting into the void but
        // remains in CLOSE_WAIT until retries are exhausted.
        for i in 0..server.profile.max_data_retries {
            server.on_rto(t(1_000 + i as u64 * 1_000), &mut out);
            assert_eq!(server.state(), State::CloseWait, "retry {i}");
        }
        // The final retry gives up and force-closes.
        server.on_rto(t(100_000), &mut out);
        assert_eq!(server.state(), State::Closed);
        assert!(out
            .iter()
            .any(|e| matches!(e, ConnEvent::Reset("retransmissions exhausted"))));
    }

    #[test]
    fn rto_retransmits_and_backs_off() {
        let (mut _client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(MSS as u64, t(40), &mut out);
        out.clear();

        server.on_rto(t(1_040), &mut out);
        let rtx = transmits(&out);
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].payload_len, MSS);
        assert_eq!(server.cwnd(), MSS, "cwnd collapses to 1 MSS on timeout");
        let rto1 = out.iter().find_map(|e| match e {
            ConnEvent::ArmRto(d) => Some(*d),
            _ => None,
        });
        out.clear();
        server.on_rto(t(3_000), &mut out);
        let rto2 = out.iter().find_map(|e| match e {
            ConnEvent::ArmRto(d) => Some(*d),
            _ => None,
        });
        assert!(
            rto2.unwrap() >= rto1.unwrap().saturating_mul(2),
            "exponential backoff"
        );
    }

    #[test]
    fn syn_retransmission_gives_up() {
        let mut client = Connection::client(profile(), 1_000);
        let mut out = Vec::new();
        client.open(&mut out);
        out.clear();
        for _ in 0..client.profile.syn_retries {
            client.on_rto(t(1_000), &mut out);
            assert_eq!(client.state(), State::SynSent);
        }
        client.on_rto(t(60_000), &mut out);
        assert_eq!(client.state(), State::Closed);
        assert!(out
            .iter()
            .any(|e| matches!(e, ConnEvent::Reset("handshake timed out"))));
    }

    #[test]
    fn futuristic_ack_is_dropped_with_reack() {
        let (mut client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(MSS as u64, t(40), &mut out);
        out.clear();
        // An ack for data never sent (a lie-mutated ack field).
        let evil = Seg {
            seq: server.rcv_nxt,
            ack: server.snd_nxt.wrapping_add(50_000),
            flags: TcpFlags::ACK,
            window: 65_535,
            urgent_ptr: 0,
            payload_len: 0,
        };
        let una_before = server.snd_una;
        server.on_segment(evil, t(50), &mut out);
        assert_eq!(server.snd_una, una_before, "future ack not absorbed");
        assert_eq!(transmits(&out).len(), 1, "re-acks current state");
        let _ = &mut client;
    }

    #[test]
    fn zero_window_stalls_sender() {
        let (mut _client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(MSS as u64, t(40), &mut out);
        out.clear();
        // Receiver advertises a zero window (lie window=0).
        let ack = Seg {
            seq: server.rcv_nxt,
            ack: server.snd_nxt,
            flags: TcpFlags::ACK,
            window: 0,
            urgent_ptr: 0,
            payload_len: 0,
        };
        server.on_segment(ack, t(50), &mut out);
        out.clear();
        server.app_send(10 * MSS as u64, t(60), &mut out);
        assert!(
            transmits(&out).is_empty(),
            "zero window blocks transmission"
        );
    }

    #[test]
    fn persist_timer_probes_zero_window_and_recovers() {
        let (mut _client, mut server) = established_pair();
        let mut out = Vec::new();
        server.app_send(MSS as u64, t(40), &mut out);
        out.clear();
        // Receiver closes its window completely.
        let zero = Seg {
            seq: server.rcv_nxt,
            ack: server.snd_nxt,
            flags: TcpFlags::ACK,
            window: 0,
            urgent_ptr: 0,
            payload_len: 0,
        };
        server.on_segment(zero, t(50), &mut out);
        out.clear();
        server.app_send(10 * MSS as u64, t(60), &mut out);
        assert!(transmits(&out).is_empty(), "no data into a zero window");
        assert!(
            out.iter().any(|e| matches!(e, ConnEvent::ArmRto(_))),
            "persist timer armed"
        );
        out.clear();

        // The persist timer fires: a probe goes out.
        server.on_rto(t(300), &mut out);
        let probes = transmits(&out);
        assert_eq!(probes.len(), 1);
        assert_eq!(probes[0].payload_len, 0, "probe is a bare ACK");
        out.clear();

        // The window reopens; transfer resumes.
        let open = Seg {
            window: 65_535,
            ..zero
        };
        server.on_segment(open, t(400), &mut out);
        assert!(
            !transmits(&out).is_empty(),
            "data flows once the window opens"
        );
    }

    #[test]
    fn simultaneous_open_via_reflected_syn() {
        // The reflect attack: a client in SYN_SENT receiving a SYN enters
        // SYN_RECEIVED (RFC 793 simultaneous open) instead of completing
        // the normal handshake.
        let mut client = Connection::client(profile(), 1_000);
        let mut out = Vec::new();
        client.open(&mut out);
        out.clear();
        let reflected = Seg {
            seq: 5_555,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65_535,
            urgent_ptr: 0,
            payload_len: 0,
        };
        client.on_segment(reflected, t(10), &mut out);
        assert_eq!(client.state(), State::SynReceived);
        assert_eq!(transmits(&out)[0].packet_type(), TcpPacketType::SynAck);
    }

    #[test]
    fn state_names_match_dot_machine() {
        for (state, name) in [
            (State::Listen, "LISTEN"),
            (State::SynSent, "SYN_SENT"),
            (State::Established, "ESTABLISHED"),
            (State::CloseWait, "CLOSE_WAIT"),
            (State::TimeWait, "TIME_WAIT"),
        ] {
            assert_eq!(state.name(), name);
        }
    }
}
