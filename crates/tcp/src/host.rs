use rand::Rng;
use snake_netsim::{Addr, Agent, Ctx, FxHashMap as HashMap, Packet, Protocol, SimTime};
use snake_packet::tcp::{TcpBuilder, TcpFlags, TcpView};

use crate::conn::{ConnEvent, Connection, Seg, State};
use crate::profile::Profile;

/// What a listening server runs on each accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerApp {
    /// Push `bytes` of application data at the client, then close — the
    /// evaluation's HTTP-download analogue (`u64::MAX` models a download
    /// larger than any test run, which is how the paper tests: "a large
    /// HTTP download with Apache or IIS ... and wget for clients").
    BulkSender {
        /// Total bytes to send.
        bytes: u64,
    },
}

impl ServerApp {
    /// Convenience constructor for the bulk sender.
    pub fn bulk_sender(bytes: u64) -> ServerApp {
        ServerApp::BulkSender { bytes }
    }
}

/// Snapshot of one connection's observable state, the per-connection part
/// of the metrics the executor reports to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnMetrics {
    /// Local port.
    pub local_port: u16,
    /// Remote address.
    pub remote: Addr,
    /// Current lifecycle state.
    pub state: State,
    /// In-order bytes delivered to the application.
    pub delivered: u64,
    /// Segments sent (including retransmissions).
    pub segs_sent: u64,
    /// Segments received.
    pub segs_received: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// RSTs sent.
    pub rsts_sent: u64,
}

/// The by-state socket count the executor queries after a test — the
/// simulated `netstat` of the paper's §V-A.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SocketCensus {
    counts: HashMap<&'static str, usize>,
}

impl SocketCensus {
    /// Number of sockets in the named state (for example `"CLOSE_WAIT"`).
    pub fn count(&self, state: &str) -> usize {
        self.counts.get(state).copied().unwrap_or(0)
    }

    /// Sockets that should have been released but were not: everything
    /// except CLOSED, LISTEN, and TIME_WAIT (the latter being a normal,
    /// bounded part of teardown).
    pub fn leaked(&self) -> usize {
        self.counts
            .iter()
            .filter(|(s, _)| !matches!(**s, "CLOSED" | "LISTEN" | "TIME_WAIT"))
            .map(|(_, n)| n)
            .sum()
    }

    /// Iterates over `(state name, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        self.counts.iter().map(|(s, n)| (*s, *n))
    }
}

const KIND_RTO: u64 = 0;
const KIND_TIME_WAIT: u64 = 1;
const KIND_APP_CLOSE: u64 = 2;
const KIND_PLAN: u64 = 3;

fn tag(idx: usize, kind: u64, gen: u64) -> u64 {
    ((idx as u64) << 32) | (kind << 28) | (gen & 0x0FFF_FFFF)
}

fn untag(tag: u64) -> (usize, u64, u64) {
    ((tag >> 32) as usize, (tag >> 28) & 0xF, tag & 0x0FFF_FFFF)
}

#[derive(Debug, Clone, Copy)]
enum AppKind {
    /// Client side of a download: counts delivered bytes.
    ClientDownload,
    /// Server side: pushes bytes on accept, closes when told the peer left.
    ServerBulk { bytes: u64 },
}

#[derive(Debug, Clone)]
struct ConnSlot {
    conn: Connection,
    local_port: u16,
    remote: Addr,
    app: AppKind,
    rto_gen: u64,
}

#[derive(Debug, Clone, Copy)]
struct ConnectPlan {
    at: SimTime,
    remote: Addr,
}

/// A simulated host running the TCP implementation under test: socket
/// table, listeners, and the client/server applications of the evaluation
/// workload. Implements [`Agent`] so it can be installed on any simulator
/// node.
#[derive(Debug, Clone)]
pub struct TcpHost {
    profile: Profile,
    conns: Vec<ConnSlot>,
    by_pair: HashMap<(u16, Addr), usize>,
    listeners: HashMap<u16, ServerApp>,
    plans: Vec<ConnectPlan>,
    next_ephemeral: u16,
    total_delivered: u64,
    malformed_dropped: u64,
}

impl TcpHost {
    /// Creates a host running the given implementation profile.
    pub fn new(profile: Profile) -> TcpHost {
        TcpHost {
            profile,
            conns: Vec::new(),
            by_pair: HashMap::default(),
            listeners: HashMap::default(),
            plans: Vec::new(),
            next_ephemeral: 40_000,
            total_delivered: 0,
            malformed_dropped: 0,
        }
    }

    /// The profile this host runs.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Starts listening on `port`, running `app` on each accepted
    /// connection.
    pub fn listen(&mut self, port: u16, app: ServerApp) {
        self.listeners.insert(port, app);
    }

    /// Schedules a client connection to `remote` at simulated time `at`
    /// (must be called before the simulation starts).
    pub fn connect_at(&mut self, at: SimTime, remote: Addr) {
        self.plans.push(ConnectPlan { at, remote });
    }

    /// Opens a client connection immediately (usable from a scheduled
    /// control action).
    pub fn connect_now(&mut self, ctx: &mut Ctx<'_>, remote: Addr) {
        let port = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(40_000);
        let iss: u32 = ctx.rng().gen();
        let mut conn = Connection::client(self.profile.clone(), iss);
        let mut events = Vec::new();
        conn.open(&mut events);
        let idx = self.install(conn, port, remote, AppKind::ClientDownload);
        self.pump(ctx, idx, events);
    }

    /// Abortively closes every connection — the moment the test ends and
    /// the client process is killed mid-download.
    pub fn abort_all(&mut self, ctx: &mut Ctx<'_>) {
        for idx in 0..self.conns.len() {
            let mut events = Vec::new();
            self.conns[idx].conn.app_abort(ctx.now(), &mut events);
            self.pump(ctx, idx, events);
        }
    }

    /// Gracefully closes every connection.
    pub fn close_all(&mut self, ctx: &mut Ctx<'_>) {
        for idx in 0..self.conns.len() {
            let mut events = Vec::new();
            self.conns[idx].conn.app_close(ctx.now(), &mut events);
            self.pump(ctx, idx, events);
        }
    }

    /// Total bytes delivered to applications on this host (the executor's
    /// throughput measurement source).
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Packets dropped as malformed (bad checksum or header length).
    pub fn malformed_dropped(&self) -> u64 {
        self.malformed_dropped
    }

    /// Per-connection metrics.
    pub fn conn_metrics(&self) -> Vec<ConnMetrics> {
        self.conns
            .iter()
            .map(|s| ConnMetrics {
                local_port: s.local_port,
                remote: s.remote,
                state: s.conn.state(),
                delivered: s.conn.delivered(),
                segs_sent: s.conn.segs_sent(),
                segs_received: s.conn.segs_received(),
                retransmits: s.conn.retransmits(),
                rsts_sent: s.conn.rsts_sent(),
            })
            .collect()
    }

    /// Counts sockets by state — the simulated `netstat`.
    pub fn census(&self) -> SocketCensus {
        let mut census = SocketCensus::default();
        for s in &self.conns {
            *census.counts.entry(s.conn.state().name()).or_insert(0) += 1;
        }
        census
    }

    fn install(&mut self, conn: Connection, port: u16, remote: Addr, app: AppKind) -> usize {
        let idx = self.conns.len();
        self.conns.push(ConnSlot {
            conn,
            local_port: port,
            remote,
            app,
            rto_gen: 0,
        });
        self.by_pair.insert((port, remote), idx);
        idx
    }

    /// Applies a batch of connection events, running any events they in
    /// turn generate until quiescence.
    fn pump(&mut self, ctx: &mut Ctx<'_>, idx: usize, events: Vec<ConnEvent>) {
        let mut queue = std::collections::VecDeque::from(events);
        while let Some(ev) = queue.pop_front() {
            match ev {
                ConnEvent::Transmit(seg) => {
                    let slot = &self.conns[idx];
                    let pkt =
                        build_packet(Addr::new(ctx.node(), slot.local_port), slot.remote, &seg);
                    ctx.send(pkt);
                }
                ConnEvent::ArmRto(after) => {
                    let slot = &mut self.conns[idx];
                    slot.rto_gen += 1;
                    let t = tag(idx, KIND_RTO, slot.rto_gen);
                    ctx.set_timer(after, t);
                }
                ConnEvent::CancelRto => {
                    self.conns[idx].rto_gen += 1;
                }
                ConnEvent::ArmTimeWait(after) => {
                    ctx.set_timer(after, tag(idx, KIND_TIME_WAIT, 0));
                }
                ConnEvent::Connected => {}
                ConnEvent::Accepted => {
                    if let AppKind::ServerBulk { bytes } = self.conns[idx].app {
                        let mut more = Vec::new();
                        self.conns[idx].conn.app_send(bytes, ctx.now(), &mut more);
                        queue.extend(more);
                    }
                }
                ConnEvent::DeliverData(n) => {
                    self.total_delivered += n as u64;
                }
                ConnEvent::PeerClosed => {
                    // The server application notices EOF and closes its
                    // side shortly after.
                    if matches!(self.conns[idx].app, AppKind::ServerBulk { .. }) {
                        ctx.set_timer(self.profile.app_close_delay, tag(idx, KIND_APP_CLOSE, 0));
                    }
                }
                ConnEvent::Reset(_) | ConnEvent::Finished => {
                    // Socket is CLOSED; it stays in the table for the
                    // census but receives no more traffic.
                }
            }
        }
    }
}

/// Encodes an outbound segment as a wire packet.
fn build_packet(src: Addr, dst: Addr, seg: &Seg) -> Packet {
    let header = TcpBuilder::new(src.port, dst.port)
        .seq(seg.seq)
        .ack(seg.ack)
        .window(seg.window)
        .flags(seg.flags)
        .urgent_ptr(seg.urgent_ptr)
        .build();
    Packet::new(
        src,
        dst,
        Protocol::Tcp,
        header.into_bytes(),
        seg.payload_len,
    )
}

/// Decodes a wire packet into a segment, or `None` if the header is
/// malformed (short, bad length field, or failed checksum) — exactly the
/// packets a real stack silently drops, which is what turns the proxy's
/// structural lie mutations into connection-establishment denial.
fn parse_packet(pkt: &Packet) -> Option<Seg> {
    let view = TcpView::new(&pkt.header).ok()?;
    // A real stack validates the header length and checksum before
    // processing. The simulation writes data_offset=5 and checksum=0 on
    // legitimate packets, so any other value means the field was mutated
    // in flight.
    if view.data_offset() != 5 {
        return None;
    }
    if view.checksum() != 0 {
        return None;
    }
    Some(Seg {
        seq: view.seq(),
        ack: view.ack(),
        flags: view.flags(),
        window: view.window(),
        urgent_ptr: view.urgent_ptr(),
        payload_len: pkt.payload_len,
    })
}

impl Agent for TcpHost {
    fn boxed_clone(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let plans = self.plans.clone();
        for (i, plan) in plans.iter().enumerate() {
            if plan.at <= ctx.now() {
                self.connect_now(ctx, plan.remote);
            } else {
                ctx.set_timer(plan.at - ctx.now(), tag(i, KIND_PLAN, 0));
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if packet.protocol != Protocol::Tcp {
            return;
        }
        let Some(seg) = parse_packet(&packet) else {
            self.malformed_dropped += 1;
            return;
        };
        let key = (packet.dst.port, packet.src);
        if let Some(&idx) = self.by_pair.get(&key) {
            let mut events = Vec::new();
            self.conns[idx].conn.on_segment(seg, ctx.now(), &mut events);
            self.pump(ctx, idx, events);
            return;
        }
        // No existing connection: maybe a listener accepts it.
        if let Some(&app) = self.listeners.get(&packet.dst.port) {
            if seg.flags.syn && !seg.flags.ack && !seg.flags.rst {
                let iss: u32 = ctx.rng().gen();
                let conn = Connection::server(self.profile.clone(), iss);
                let idx = self.install(
                    conn,
                    packet.dst.port,
                    packet.src,
                    match app {
                        ServerApp::BulkSender { bytes } => AppKind::ServerBulk { bytes },
                    },
                );
                let mut events = Vec::new();
                self.conns[idx].conn.on_segment(seg, ctx.now(), &mut events);
                self.pump(ctx, idx, events);
                return;
            }
        }
        // Closed port: RFC 793 answers with RST (unless it was a RST).
        if !seg.flags.rst {
            let rst = Seg {
                seq: if seg.flags.ack { seg.ack } else { 0 },
                ack: seg.seq.wrapping_add(seg.payload_len.max(1)),
                flags: TcpFlags::RST_ACK,
                window: 0,
                urgent_ptr: 0,
                payload_len: 0,
            };
            let pkt = build_packet(Addr::new(ctx.node(), packet.dst.port), packet.src, &rst);
            ctx.send(pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        let (idx, kind, gen) = untag(t);
        match kind {
            KIND_PLAN => {
                if let Some(plan) = self.plans.get(idx).copied() {
                    self.connect_now(ctx, plan.remote);
                }
            }
            KIND_RTO if idx < self.conns.len() && self.conns[idx].rto_gen == gen => {
                let mut events = Vec::new();
                self.conns[idx].conn.on_rto(ctx.now(), &mut events);
                self.pump(ctx, idx, events);
            }
            KIND_TIME_WAIT if idx < self.conns.len() => {
                let mut events = Vec::new();
                self.conns[idx].conn.on_time_wait_expiry(&mut events);
                self.pump(ctx, idx, events);
            }
            KIND_APP_CLOSE if idx < self.conns.len() => {
                let mut events = Vec::new();
                self.conns[idx].conn.app_close(ctx.now(), &mut events);
                self.pump(ctx, idx, events);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_netsim::{Dumbbell, DumbbellSpec, LinkSpec, SimDuration, Simulator, Tap, TapCtx};

    fn download_sim(profile: Profile, secs: u64) -> (Simulator, Dumbbell) {
        let mut sim = Simulator::new(11);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        let mut s1 = TcpHost::new(profile.clone());
        s1.listen(80, ServerApp::bulk_sender(u64::MAX));
        sim.set_agent(d.server1, s1);
        let mut s2 = TcpHost::new(profile.clone());
        s2.listen(80, ServerApp::bulk_sender(u64::MAX));
        sim.set_agent(d.server2, s2);
        let mut c1 = TcpHost::new(profile.clone());
        c1.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
        sim.set_agent(d.client1, c1);
        let mut c2 = TcpHost::new(profile);
        c2.connect_at(SimTime::ZERO, Addr::new(d.server2, 80));
        sim.set_agent(d.client2, c2);
        sim.run_until(SimTime::from_secs(secs));
        (sim, d)
    }

    #[test]
    fn download_fills_the_bottleneck() {
        let (sim, d) = download_sim(Profile::linux_3_13(), 10);
        let got = sim.agent::<TcpHost>(d.client1).unwrap().total_delivered();
        // 10 Mbit/s bottleneck shared by two flows over 10 s ≈ 12.5 MB
        // total; each flow should get a solid share and the pipe should be
        // well utilised.
        let got2 = sim.agent::<TcpHost>(d.client2).unwrap().total_delivered();
        let total = got + got2;
        assert!(total > 8_000_000, "bottleneck utilisation too low: {total}");
        assert!(total < 13_500_000, "more than line rate?! {total}");
    }

    #[test]
    fn competing_flows_share_fairly() {
        // The fairness baseline the paper's ±50% detection threshold rests
        // on: two unattacked flows achieve throughput within a factor of
        // two of each other (§VI).
        for profile in Profile::all() {
            let name = profile.name.clone();
            let (sim, d) = download_sim(profile, 20);
            let a = sim.agent::<TcpHost>(d.client1).unwrap().total_delivered() as f64;
            let b = sim.agent::<TcpHost>(d.client2).unwrap().total_delivered() as f64;
            let ratio = a.max(b) / a.min(b).max(1.0);
            assert!(
                ratio < 2.0,
                "{name}: unfair baseline, ratio {ratio:.2} ({a} vs {b})"
            );
        }
    }

    #[test]
    fn abort_then_clean_teardown_leaves_no_leak() {
        let (mut sim, d) = download_sim(Profile::linux_3_13(), 5);
        // Kill the client mid-download; its RSTs flow unhindered, so the
        // server must clean up.
        sim.schedule_control(SimTime::from_secs(5), d.client1, |agent, ctx| {
            let any: &mut dyn std::any::Any = agent;
            any.downcast_mut::<TcpHost>().unwrap().abort_all(ctx);
        });
        sim.run_until(SimTime::from_secs(40));
        let census = sim.agent::<TcpHost>(d.server1).unwrap().census();
        assert_eq!(census.leaked(), 0, "census: {census:?}");
    }

    /// Drops every RST travelling client→server; forwards everything else.
    struct RstDropTap;
    impl Tap for RstDropTap {
        fn on_packet(&mut self, ctx: &mut TapCtx<'_>, packet: Packet, toward_b: bool) {
            if toward_b {
                if let Ok(view) = TcpView::new(&packet.header) {
                    if view.flags().rst {
                        return; // drop
                    }
                }
            }
            ctx.forward(packet, toward_b);
        }
    }

    #[test]
    fn dropping_rsts_wedges_linux_server_in_close_wait() {
        // End-to-end reproduction of the CLOSE_WAIT resource-exhaustion
        // attack (paper §VI-A.1) at the host level.
        let mut sim = Simulator::new(11);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        let profile = Profile::linux_3_0_0();
        let mut s1 = TcpHost::new(profile.clone());
        s1.listen(80, ServerApp::bulk_sender(u64::MAX));
        sim.set_agent(d.server1, s1);
        let mut c1 = TcpHost::new(profile);
        c1.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
        sim.set_agent(d.client1, c1);
        sim.attach_tap(d.proxy_link, RstDropTap);

        sim.schedule_control(SimTime::from_secs(5), d.client1, |agent, ctx| {
            let any: &mut dyn std::any::Any = agent;
            any.downcast_mut::<TcpHost>().unwrap().abort_all(ctx);
        });
        sim.run_until(SimTime::from_secs(40));
        let census = sim.agent::<TcpHost>(d.server1).unwrap().census();
        assert_eq!(census.count("CLOSE_WAIT"), 1, "census: {census:?}");
        assert!(census.leaked() > 0);
    }

    #[test]
    fn windows_server_recovers_from_dropped_rsts() {
        // Windows clients abort with a bare RST (no FIN): the server never
        // enters CLOSE_WAIT, and its 5-retry give-up frees the socket well
        // within the observation window — which is why the paper reports
        // the CLOSE_WAIT attack against Linux only.
        let mut sim = Simulator::new(11);
        let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
        let profile = Profile::windows_8_1();
        let mut s1 = TcpHost::new(profile.clone());
        s1.listen(80, ServerApp::bulk_sender(u64::MAX));
        sim.set_agent(d.server1, s1);
        let mut c1 = TcpHost::new(profile);
        c1.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
        sim.set_agent(d.client1, c1);
        sim.attach_tap(d.proxy_link, RstDropTap);

        sim.schedule_control(SimTime::from_secs(5), d.client1, |agent, ctx| {
            let any: &mut dyn std::any::Any = agent;
            any.downcast_mut::<TcpHost>().unwrap().abort_all(ctx);
        });
        sim.run_until(SimTime::from_secs(60));
        let census = sim.agent::<TcpHost>(d.server1).unwrap().census();
        assert_eq!(census.count("CLOSE_WAIT"), 0, "census: {census:?}");
        assert_eq!(census.leaked(), 0, "census: {census:?}");
    }

    #[test]
    fn malformed_packets_are_dropped() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_link(
            a,
            b,
            LinkSpec::new(10_000_000, SimDuration::from_millis(1), 16),
        );
        let mut host = TcpHost::new(Profile::linux_3_13());
        host.listen(80, ServerApp::bulk_sender(1_000));
        sim.set_agent(b, host);

        // A SYN with a corrupted checksum field must be ignored.
        struct BadSyn {
            target: Addr,
        }
        impl Agent for BadSyn {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let mut header = TcpBuilder::new(40_000, 80).flags(TcpFlags::SYN).build();
                header.set("checksum", 0xBEEF).unwrap();
                let pkt = Packet::new(
                    ctx.addr(40_000),
                    self.target,
                    Protocol::Tcp,
                    header.into_bytes(),
                    0,
                );
                ctx.send(pkt);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}
        }
        sim.set_agent(
            a,
            BadSyn {
                target: Addr::new(b, 80),
            },
        );
        sim.run_until(SimTime::from_secs(1));
        let host = sim.agent::<TcpHost>(b).unwrap();
        assert_eq!(host.malformed_dropped(), 1);
        assert_eq!(host.census().count("SYN_RECEIVED"), 0);
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_link(
            a,
            b,
            LinkSpec::new(10_000_000, SimDuration::from_millis(1), 16),
        );
        sim.set_agent(b, TcpHost::new(Profile::linux_3_13())); // no listener

        struct Probe {
            target: Addr,
            got_rst: bool,
        }
        impl Agent for Probe {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let header = TcpBuilder::new(40_000, 81).flags(TcpFlags::SYN).build();
                let pkt = Packet::new(
                    ctx.addr(40_000),
                    self.target,
                    Protocol::Tcp,
                    header.into_bytes(),
                    0,
                );
                ctx.send(pkt);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, packet: Packet) {
                if TcpView::new(&packet.header)
                    .map(|v| v.flags().rst)
                    .unwrap_or(false)
                {
                    self.got_rst = true;
                }
            }
        }
        sim.set_agent(
            a,
            Probe {
                target: Addr::new(b, 81),
                got_rst: false,
            },
        );
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.agent::<Probe>(a).unwrap().got_rst);
    }

    #[test]
    fn census_counts_states() {
        let (sim, d) = download_sim(Profile::linux_3_13(), 3);
        let census = sim.agent::<TcpHost>(d.server1).unwrap().census();
        assert_eq!(census.count("ESTABLISHED"), 1);
        assert_eq!(census.leaked(), 1, "mid-transfer the socket is live");
    }
}
