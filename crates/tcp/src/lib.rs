//! A from-scratch TCP engine with per-OS implementation profiles.
//!
//! This crate is the reproduction's substitute for the unmodified OS network
//! stacks the paper tests inside KVM virtual machines (Linux 3.0.0,
//! Linux 3.13, Windows 8.1, Windows 95). It implements, from the RFCs:
//!
//! * the full RFC 793 connection lifecycle (three-way handshake, the
//!   11-state machine, graceful and abortive teardown),
//! * reliability: byte sequence numbers, cumulative acknowledgments,
//!   retransmission on RTO (RFC 6298 estimator with exponential backoff)
//!   and fast retransmit on three duplicate ACKs,
//! * congestion control: New Reno slow start / congestion avoidance / fast
//!   recovery (RFC 5681/6582),
//! * flow control via the advertised receive window, and
//! * a per-host socket table with listener demultiplexing, exposing the
//!   census the executor uses to detect resource-exhaustion attacks.
//!
//! Engines parse every arriving segment from raw header bytes (via
//! `snake-packet`), so a mutation made by the attack proxy is genuinely
//! observed by the implementation — there is no typed side channel.
//!
//! # Implementation profiles
//!
//! SNAKE's findings differ per OS because the stacks differ. The
//! [`Profile`] type captures exactly the documented behavioural differences
//! the paper's attacks hinge on (§VI-A): initial window and retry limits,
//! Windows 95's naïve ACK-counted congestion-window growth, each stack's
//! handling of invalid flag combinations, and how an aborting client tears
//! down (Linux's FIN-then-RST vs Windows' immediate RST).
//!
//! # Examples
//!
//! A complete download over the dumbbell topology:
//!
//! ```
//! use snake_netsim::{Dumbbell, DumbbellSpec, SimTime, Simulator};
//! use snake_tcp::{Profile, TcpHost};
//!
//! let mut sim = Simulator::new(1);
//! let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
//! let mut server = TcpHost::new(Profile::linux_3_13());
//! server.listen(80, snake_tcp::ServerApp::bulk_sender(u64::MAX));
//! sim.set_agent(d.server1, server);
//!
//! let mut client = TcpHost::new(Profile::linux_3_13());
//! client.connect_at(SimTime::ZERO, snake_netsim::Addr::new(d.server1, 80));
//! sim.set_agent(d.client1, client);
//!
//! sim.run_until(SimTime::from_secs(5));
//! let host = sim.agent::<TcpHost>(d.client1).unwrap();
//! assert!(host.total_delivered() > 1_000_000, "several Mbit in 5 s");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod conn;
mod host;
mod profile;
pub mod seq;

pub use conn::{ConnEvent, Connection, Seg, State, DSACK_MARKER, SACK_MARKER};
pub use host::{ConnMetrics, ServerApp, SocketCensus, TcpHost};
pub use profile::{AbortStyle, InvalidFlagPolicy, Profile};

/// The maximum segment size used throughout the evaluation (Ethernet MTU
/// minus IP and TCP headers).
pub const MSS: u32 = 1460;
