use snake_netsim::SimDuration;

/// How a stack reacts to a segment whose flag combination no correct
/// implementation would send (paper §VI-A.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvalidFlagPolicy {
    /// Attempt to interpret the packet anyway: the ACK field is processed,
    /// an in-window SYN resets, a FIN closes, and a packet with *no* flags
    /// at all is answered with a duplicate acknowledgment. Observed on
    /// Linux 3.0.0 (and modelled for Windows 95).
    BestEffort,
    /// Silently ignore the whole segment. Observed on Linux 3.13, which
    /// fixed the 3.0.0 behaviour.
    Ignore,
    /// Process the RST flag regardless of what else is set; ignore every
    /// other nonsensical combination. Observed on Windows 8.1.
    RstAlwaysWins,
}

/// How a stack tears down when the local application exits abruptly in the
/// middle of a transfer (a killed `wget`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortStyle {
    /// Send a FIN, then answer any further data with RSTs (valid per RFC
    /// 793 since the data can never be delivered). Linux behaviour; the
    /// precondition of the CLOSE_WAIT resource-exhaustion attack.
    FinThenRst,
    /// Send a single RST immediately and forget the connection. Windows
    /// behaviour.
    RstOnly,
}

/// Behavioural parameters of one TCP implementation — the reproduction's
/// equivalent of booting a different OS image in the paper's testbed.
///
/// Profiles only encode behaviours documented in the paper or the stacks'
/// public defaults; everything else is shared RFC-conformant engine code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Display name, as it appears in the paper's tables.
    pub name: String,
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Retransmissions of the same data before the connection is
    /// force-closed (Linux `tcp_retries2` = 15; Windows
    /// `TcpMaxDataRetransmissions` = 5).
    pub max_data_retries: u32,
    /// Lower bound for the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound for the retransmission timeout.
    pub max_rto: SimDuration,
    /// Congestion-window growth counts every arriving ACK, without checking
    /// for duplicates or how much data is outstanding — the naïve behaviour
    /// Savage et al. exploited, present in Windows 95 (paper §VI-A.3).
    pub naive_ack_counting: bool,
    /// Whether the stack implements fast retransmit / fast recovery
    /// (all four test profiles do; the knob exists for ablation benches).
    pub fast_retransmit: bool,
    /// The stack's duplicate-ACK rate limiter treats a burst of duplicates
    /// as severe loss and collapses the window to two segments instead of
    /// entering standard inflation-based recovery. The Windows 8.1
    /// behaviour behind the Duplicate-Acknowledgment-Rate-Limiting attack
    /// (paper §VI-A.6: a 5× throughput drop against the competing flow).
    pub harsh_dupack_response: bool,
    /// Handling of invalid flag combinations.
    pub invalid_flags: InvalidFlagPolicy,
    /// Teardown behaviour when the application aborts.
    pub abort_style: AbortStyle,
    /// The receiver tags acknowledgments generated for fully-duplicate old
    /// segments with a DSACK marker (RFC 2883), which senders then exclude
    /// from duplicate-ACK loss counting. Linux does this; the Windows
    /// profiles do not, which is what makes Windows 8.1 vulnerable to the
    /// Duplicate-Acknowledgment-Rate-Limiting attack (paper §VI-A.6): its
    /// unmarked duplicate ACKs count as loss indications and every
    /// duplicated PSH+ACK burst halves the sender's window for real.
    ///
    /// On this reproduction's fixed 20-byte header the DSACK option is
    /// carried in the (otherwise unused) `urgent_ptr` field with URG clear;
    /// see DESIGN.md.
    pub dsack: bool,
    /// The sender counts a duplicate ACK as a loss indication only when it
    /// carries SACK evidence of a genuine reception hole (RFC 6675's rule
    /// that a duplicate must report new SACK information). Linux enforces
    /// this, which is what makes it immune to blind acknowledgment
    /// duplication; the Windows profiles count any duplicate.
    pub sack_loss_evidence: bool,
    /// SACK-style loss recovery: during fast recovery, each arriving ack
    /// clocks out a retransmission of the next unacknowledged segment below
    /// the recovery point, so a multi-segment loss burst heals in roughly
    /// one RTT. Linux and Windows 8.1 negotiate SACK; Windows 95 is plain
    /// New Reno and recovers one segment per round trip.
    pub sack_recovery: bool,
    /// SYN (and SYN+ACK) retransmission limit before giving up on
    /// connection establishment.
    pub syn_retries: u32,
    /// How long a socket lingers in TIME_WAIT (2·MSL).
    pub time_wait: SimDuration,
    /// How long after learning the peer closed the server application
    /// takes to close its side (the `close()` an HTTP server issues once
    /// the response is abandoned).
    pub app_close_delay: SimDuration,
}

impl Profile {
    /// Linux kernel 3.0.0.
    pub fn linux_3_0_0() -> Profile {
        Profile {
            name: "Linux 3.0.0".to_owned(),
            initial_cwnd_segments: 10,
            max_data_retries: 15,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(120),
            naive_ack_counting: false,
            fast_retransmit: true,
            harsh_dupack_response: false,
            invalid_flags: InvalidFlagPolicy::BestEffort,
            abort_style: AbortStyle::FinThenRst,
            dsack: true,
            sack_loss_evidence: true,
            sack_recovery: true,
            syn_retries: 5,
            time_wait: SimDuration::from_secs(60),
            app_close_delay: SimDuration::from_millis(200),
        }
    }

    /// Linux kernel 3.13.
    pub fn linux_3_13() -> Profile {
        Profile {
            name: "Linux 3.13".to_owned(),
            invalid_flags: InvalidFlagPolicy::Ignore,
            ..Profile::linux_3_0_0()
        }
    }

    /// Windows 8.1.
    pub fn windows_8_1() -> Profile {
        Profile {
            name: "Windows 8.1".to_owned(),
            initial_cwnd_segments: 4,
            max_data_retries: 5,
            min_rto: SimDuration::from_millis(300),
            max_rto: SimDuration::from_secs(60),
            naive_ack_counting: false,
            fast_retransmit: true,
            harsh_dupack_response: true,
            invalid_flags: InvalidFlagPolicy::RstAlwaysWins,
            abort_style: AbortStyle::RstOnly,
            dsack: false,
            sack_loss_evidence: false,
            sack_recovery: true,
            syn_retries: 5,
            time_wait: SimDuration::from_secs(60),
            app_close_delay: SimDuration::from_millis(200),
        }
    }

    /// Windows 95.
    pub fn windows_95() -> Profile {
        Profile {
            name: "Windows 95".to_owned(),
            initial_cwnd_segments: 2,
            max_data_retries: 5,
            min_rto: SimDuration::from_millis(500),
            max_rto: SimDuration::from_secs(60),
            naive_ack_counting: true,
            fast_retransmit: true,
            harsh_dupack_response: false,
            invalid_flags: InvalidFlagPolicy::BestEffort,
            abort_style: AbortStyle::RstOnly,
            dsack: false,
            sack_loss_evidence: false,
            sack_recovery: false,
            syn_retries: 5,
            time_wait: SimDuration::from_secs(60),
            app_close_delay: SimDuration::from_millis(200),
        }
    }

    /// All four implementations tested in the paper, in Table I order.
    pub fn all() -> Vec<Profile> {
        vec![
            Profile::linux_3_0_0(),
            Profile::linux_3_13(),
            Profile::windows_8_1(),
            Profile::windows_95(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_encode_paper_documented_quirks() {
        assert_eq!(
            Profile::linux_3_0_0().invalid_flags,
            InvalidFlagPolicy::BestEffort
        );
        assert_eq!(
            Profile::linux_3_13().invalid_flags,
            InvalidFlagPolicy::Ignore
        );
        assert_eq!(
            Profile::windows_8_1().invalid_flags,
            InvalidFlagPolicy::RstAlwaysWins
        );
        assert!(Profile::windows_95().naive_ack_counting);
        assert!(!Profile::linux_3_13().naive_ack_counting);
        assert!(!Profile::windows_8_1().dsack);
        assert!(Profile::linux_3_0_0().dsack);
        assert_eq!(Profile::linux_3_0_0().abort_style, AbortStyle::FinThenRst);
        assert_eq!(Profile::windows_8_1().abort_style, AbortStyle::RstOnly);
    }

    #[test]
    fn linux_retries_exceed_windows() {
        assert_eq!(Profile::linux_3_13().max_data_retries, 15);
        assert_eq!(Profile::windows_8_1().max_data_retries, 5);
    }

    #[test]
    fn all_lists_four_implementations() {
        let names: Vec<String> = Profile::all().into_iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            ["Linux 3.0.0", "Linux 3.13", "Windows 8.1", "Windows 95"]
        );
    }
}
