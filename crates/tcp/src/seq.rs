//! Wraparound-safe 32-bit sequence number arithmetic (RFC 793 §3.3).
//!
//! The attack proxy routinely mutates sequence and acknowledgment fields to
//! extreme values, so every comparison in the engine must be modular; plain
//! `<` would make the engine accept or reject the wrong segments near the
//! wrap point and the reproduction of the sequence-window attacks (Reset,
//! SYN-Reset) would be unsound.

/// `a < b` in sequence space.
#[inline]
pub fn lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
#[inline]
pub fn le(a: u32, b: u32) -> bool {
    a == b || lt(a, b)
}

/// `a > b` in sequence space.
#[inline]
pub fn gt(a: u32, b: u32) -> bool {
    lt(b, a)
}

/// `a >= b` in sequence space.
#[inline]
pub fn ge(a: u32, b: u32) -> bool {
    le(b, a)
}

/// Whether `x` lies in the half-open window `[start, start + len)`,
/// wraparound-safe.
#[inline]
pub fn in_window(x: u32, start: u32, len: u32) -> bool {
    x.wrapping_sub(start) < len
}

/// Whether a segment `[seq, seq + seg_len)` overlaps the receive window
/// `[rcv_nxt, rcv_nxt + rcv_wnd)` — the RFC 793 acceptability test.
///
/// Zero-length segments are acceptable when `seq` is inside the window (or
/// equals `rcv_nxt` when the window is zero).
pub fn segment_acceptable(seq: u32, seg_len: u32, rcv_nxt: u32, rcv_wnd: u32) -> bool {
    if seg_len == 0 {
        if rcv_wnd == 0 {
            return seq == rcv_nxt;
        }
        return in_window(seq, rcv_nxt, rcv_wnd);
    }
    if rcv_wnd == 0 {
        return false;
    }
    // First byte in window, or last byte in window.
    in_window(seq, rcv_nxt, rcv_wnd) || in_window(seq.wrapping_add(seg_len - 1), rcv_nxt, rcv_wnd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        assert!(lt(1, 2));
        assert!(gt(2, 1));
        assert!(le(2, 2));
        assert!(ge(2, 2));
    }

    #[test]
    fn ordering_across_wrap() {
        assert!(lt(u32::MAX, 0), "MAX is just before 0");
        assert!(gt(5, u32::MAX - 5));
        assert!(lt(u32::MAX - 5, 5));
    }

    #[test]
    fn window_membership() {
        assert!(in_window(10, 10, 1));
        assert!(!in_window(11, 10, 1));
        assert!(in_window(0, u32::MAX, 10), "window spanning the wrap");
        assert!(!in_window(u32::MAX - 1, u32::MAX, 10));
    }

    #[test]
    fn acceptability_zero_length() {
        // Pure ACK exactly at rcv_nxt.
        assert!(segment_acceptable(100, 0, 100, 65_535));
        // Just below the window.
        assert!(!segment_acceptable(99, 0, 100, 65_535));
        // At the top edge (exclusive).
        assert!(!segment_acceptable(100 + 65_535, 0, 100, 65_535));
        // Zero window accepts only rcv_nxt.
        assert!(segment_acceptable(100, 0, 100, 0));
        assert!(!segment_acceptable(101, 0, 100, 0));
    }

    #[test]
    fn acceptability_with_payload() {
        // Fully inside.
        assert!(segment_acceptable(100, 1460, 100, 65_535));
        // Overlapping the left edge: old data but tail is new.
        assert!(segment_acceptable(50, 100, 100, 65_535));
        // Entirely old.
        assert!(!segment_acceptable(50, 10, 100, 65_535));
        // Zero window never accepts data.
        assert!(!segment_acceptable(100, 1, 100, 0));
    }

    #[test]
    fn acceptability_across_wrap() {
        let rcv_nxt = u32::MAX - 100;
        assert!(segment_acceptable(rcv_nxt, 1460, rcv_nxt, 65_535));
        assert!(
            segment_acceptable(10, 1460, rcv_nxt, 65_535),
            "window wraps past zero"
        );
    }
}
