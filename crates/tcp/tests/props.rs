//! Property-based tests on TCP sequence arithmetic and engine invariants.
//! The proxy writes arbitrary 32-bit values into seq/ack fields, so the
//! engine's wraparound behaviour is adversarial-input-facing.

use proptest::prelude::*;
use snake_netsim::SimTime;
use snake_packet::tcp::TcpFlags;
use snake_tcp::{seq, Connection, Profile, Seg};

proptest! {
    /// Total antisymmetry: for distinct points not exactly half the space
    /// apart, exactly one of lt(a,b) / lt(b,a) holds.
    #[test]
    fn lt_antisymmetric(a in any::<u32>(), b in any::<u32>()) {
        if a != b && a.wrapping_sub(b) != 0x8000_0000 {
            prop_assert!(seq::lt(a, b) ^ seq::lt(b, a));
        }
    }

    /// Shift invariance: ordering is preserved under adding any offset.
    #[test]
    fn lt_shift_invariant(a in any::<u32>(), b in any::<u32>(), k in any::<u32>()) {
        prop_assert_eq!(seq::lt(a, b), seq::lt(a.wrapping_add(k), b.wrapping_add(k)));
    }

    /// Window membership matches the arithmetic definition.
    #[test]
    fn in_window_definition(x in any::<u32>(), start in any::<u32>(), len in 0u32..1_000_000) {
        let member = seq::in_window(x, start, len);
        let offset = x.wrapping_sub(start);
        prop_assert_eq!(member, offset < len);
    }

    /// Segment acceptability is shift-invariant too (no absolute-value
    /// comparisons anywhere).
    #[test]
    fn acceptability_shift_invariant(
        seq_no in any::<u32>(),
        len in 0u32..3_000,
        rcv in any::<u32>(),
        wnd in 0u32..100_000,
        k in any::<u32>(),
    ) {
        prop_assert_eq!(
            seq::segment_acceptable(seq_no, len, rcv, wnd),
            seq::segment_acceptable(seq_no.wrapping_add(k), len, rcv.wrapping_add(k), wnd)
        );
    }
}

/// Builds an established connection with `iss` chosen adversarially close
/// to the wrap point.
fn established_with_iss(iss: u32) -> (Connection, Connection) {
    let mut client = Connection::client(Profile::linux_3_13(), iss);
    let mut server = Connection::server(Profile::linux_3_13(), iss.wrapping_add(0x1234_5678));
    let mut out = Vec::new();
    client.open(&mut out);
    let syn = first_tx(&out);
    out.clear();
    server.on_segment(syn, SimTime::ZERO, &mut out);
    let synack = first_tx(&out);
    out.clear();
    client.on_segment(synack, SimTime::ZERO, &mut out);
    let ack = first_tx(&out);
    out.clear();
    server.on_segment(ack, SimTime::ZERO, &mut out);
    (client, server)
}

fn first_tx(events: &[snake_tcp::ConnEvent]) -> Seg {
    events
        .iter()
        .find_map(|e| match e {
            snake_tcp::ConnEvent::Transmit(s) => Some(*s),
            _ => None,
        })
        .expect("transmit")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The handshake establishes for any initial sequence number,
    /// including ones that wrap during the connection.
    #[test]
    fn handshake_works_for_any_iss(iss in any::<u32>()) {
        let (client, server) = established_with_iss(iss);
        prop_assert_eq!(client.state(), snake_tcp::State::Established);
        prop_assert_eq!(server.state(), snake_tcp::State::Established);
    }

    /// Data transfer across the sequence wrap delivers every byte exactly
    /// once.
    #[test]
    fn transfer_across_wrap(offset in 0u32..30_000) {
        // Put the ISS just below the wrap so the transfer crosses it.
        let iss = u32::MAX - offset;
        let (mut client, mut server) = established_with_iss(iss);
        let mut out = Vec::new();
        let total: u64 = 60_000;
        server.app_send(total, SimTime::ZERO, &mut out);
        // Shuttle until quiescent.
        for _round in 0..64 {
            let data: Vec<Seg> = out.iter().filter_map(|e| match e {
                snake_tcp::ConnEvent::Transmit(s) => Some(*s),
                _ => None,
            }).collect();
            out.clear();
            if data.is_empty() {
                break;
            }
            let mut acks = Vec::new();
            for d in &data {
                client.on_segment(*d, SimTime::ZERO, &mut acks);
            }
            let replies: Vec<Seg> = acks.iter().filter_map(|e| match e {
                snake_tcp::ConnEvent::Transmit(s) => Some(*s),
                _ => None,
            }).collect();
            for a in replies {
                server.on_segment(a, SimTime::ZERO, &mut out);
            }
        }
        prop_assert_eq!(client.delivered(), total);
    }

    /// Arbitrary (possibly garbage) segments never panic the engine and
    /// never inflate the delivered count beyond what was actually sent.
    #[test]
    fn engine_tolerates_arbitrary_segments(
        seqs in prop::collection::vec((any::<u32>(), any::<u32>(), 0u32..2_000, any::<u8>()), 1..50)
    ) {
        let (mut client, _server) = established_with_iss(1_000);
        let mut out = Vec::new();
        for (seq_no, ack, len, flag_bits) in seqs {
            let flags = TcpFlags {
                urg: flag_bits & 1 != 0,
                ack: flag_bits & 2 != 0,
                psh: flag_bits & 4 != 0,
                rst: flag_bits & 8 != 0,
                syn: flag_bits & 16 != 0,
                fin: flag_bits & 32 != 0,
            };
            let seg = Seg { seq: seq_no, ack, flags, window: 65_535, urgent_ptr: 0, payload_len: len };
            client.on_segment(seg, SimTime::ZERO, &mut out);
            out.clear();
        }
        // No data was legitimately in-window beyond the tiny receive
        // window; delivery is bounded by what a 64 KiB window can accept
        // per in-order prefix — it can never exceed the sum of payloads.
        prop_assert!(client.delivered() < 64 * 1024 * 50);
    }
}
