//! Combination strategies — the extension the paper sketches at the end
//! of §IV-C: "more complex attack strategies that combine the basic
//! attacks ... into strategies consisting of sequences of actions. We
//! currently support only the basic attacks."
//!
//! This reproduction supports them: several strategies run in the same
//! test, each keyed to its own `(state, packet type)` pair. The demo
//! combines two independently discovered Linux attacks into a single
//! malicious-client session:
//!
//! 1. batch the server's data into half-second bursts (a Shrew-style
//!    throughput degradation), and
//! 2. drop the client's RSTs in FIN_WAIT_1 after the end-of-test abort
//!    (the CLOSE_WAIT resource exhaustion — the batched data still in
//!    flight at the abort can never be acknowledged).
//!
//! The combined run shows both effects at once — a slow-then-wedge attack
//! a single basic strategy cannot express.
//!
//! ```sh
//! cargo run --release --example combination
//! ```

use snake_core::{detect, Executor, ProtocolKind, ScenarioSpec, DEFAULT_THRESHOLD};
use snake_proxy::{BasicAttack, Endpoint, Strategy, StrategyKind};
use snake_tcp::Profile;

fn main() {
    let spec = ScenarioSpec::evaluation(ProtocolKind::Tcp(Profile::linux_3_0_0()));
    let baseline = Executor::run(&spec, None);

    let batch_data = Strategy {
        id: 1,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Server,
            state: "ESTABLISHED".into(),
            packet_type: "DATA".into(),
            attack: BasicAttack::Batch { secs: 0.5 },
        },
    };
    let drop_rsts = Strategy {
        id: 2,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            state: "FIN_WAIT_1".into(),
            packet_type: "RST".into(),
            attack: BasicAttack::Drop { percent: 100 },
        },
    };

    println!(
        "baseline:            target {:>9} B, leaked {}",
        baseline.target_bytes, baseline.leaked_sockets
    );
    for (name, rules) in [
        ("batch data only", vec![batch_data.clone()]),
        ("drop RSTs only", vec![drop_rsts.clone()]),
        ("combination", vec![batch_data, drop_rsts]),
    ] {
        let m = Executor::run_combination(&spec, rules);
        let v = detect(&baseline, &m, DEFAULT_THRESHOLD);
        println!(
            "{name:<20} target {:>9} B, leaked {} (CLOSE_WAIT {}) -> {:?}",
            m.target_bytes,
            m.leaked_sockets,
            m.leaked_close_wait,
            v.labels()
        );
    }
    println!(
        "\nThe combination run both degrades the flow during the test and wedges\n\
         the server socket afterwards — two Table II attack mechanisms in one\n\
         session."
    );
}
