//! Full DCCP campaign: the state-based attack search against the Linux
//! 3.13 DCCP implementation, regenerating the DCCP row of Table I and the
//! DCCP attacks of Table II.
//!
//! ```sh
//! cargo run --release --example dccp_campaign            # full search
//! cargo run --release --example dccp_campaign -- 200     # capped
//! ```

use snake_core::{
    render_table1, render_table2, Campaign, CampaignConfig, ProtocolKind, ScenarioSpec,
};
use snake_dccp::DccpProfile;

fn main() {
    let cap: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let spec = ScenarioSpec::evaluation(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    let mut builder = CampaignConfig::builder(spec);
    if let Some(cap) = cap {
        builder = builder.cap(cap);
    }
    let config = builder.build().expect("valid config");
    eprintln!("== campaign: Linux 3.13 DCCP ==");
    let start = std::time::Instant::now();
    let result = Campaign::run(config).expect("campaign preconditions hold");
    eprintln!(
        "   {} strategies in {:.1?}; {} flagged, {} true, {} unique attacks",
        result.strategies_tried(),
        start.elapsed(),
        result.attack_strategies_found(),
        result.true_attack_strategies(),
        result.true_attacks()
    );
    for f in &result.findings {
        eprintln!(
            "   * {} ({}) — e.g. {}",
            f.attack.name(),
            f.effects.join(","),
            f.example
        );
    }

    let results = vec![result];
    println!("\nTable I (DCCP row):\n{}", render_table1(&results));
    println!("Table II (DCCP attacks):\n{}", render_table2(&results));
}
