//! Resource-exhaustion scaling: one wedged socket per connection.
//!
//! The paper's CLOSE_WAIT finding warns that "an attacker can easily
//! initiate hundreds of thousands of such connections before they begin to
//! expire, likely rendering the server unavailable" (§VI-A.1). This
//! example scales the scenario: the malicious client opens N connections
//! (staggered), all sharing one RST-dropping strategy, and the server
//! census shows the leak growing linearly with N — every connection costs
//! the server one socket wedged in CLOSE_WAIT for the retransmission
//! give-up period (13+ minutes on Linux).
//!
//! ```sh
//! cargo run --release --example exhaustion_scaling
//! ```

use snake_core::{Executor, ProtocolKind, ScenarioSpec};
use snake_proxy::{BasicAttack, Endpoint, Strategy, StrategyKind};
use snake_tcp::Profile;

fn main() {
    let drop_rsts = Strategy {
        id: 1,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            state: "FIN_WAIT_1".into(),
            packet_type: "RST".into(),
            attack: BasicAttack::Drop { percent: 100 },
        },
    };

    println!("| Connections | Leaked sockets | In CLOSE_WAIT |");
    println!("|-------------|----------------|---------------|");
    for n in [1usize, 4, 16, 64] {
        let spec = ScenarioSpec::builder(ProtocolKind::Tcp(Profile::linux_3_0_0()))
            .target_connections(n)
            .data_secs(10)
            .build()
            .expect("scaling scenario is valid");
        let m = Executor::run(&spec, Some(drop_rsts.clone()));
        println!(
            "| {:>11} | {:>14} | {:>13} |",
            n, m.leaked_sockets, m.leaked_close_wait
        );
    }
    println!(
        "\nEach malicious connection wedges one server socket — the linear DoS\n\
         scaling behind the paper's CLOSE_WAIT warning."
    );
}
