//! OS fingerprinting via invalid flag combinations (paper §VI-A.2).
//!
//! The paper's "Packets with Invalid Flags" finding: implementations react
//! differently to nonsensical flag combinations, so an attacker can
//! fingerprint the stack. This example probes each implementation profile
//! with the paper's combinations (null flags, SYN+FIN, SYN+FIN+ACK+PSH,
//! SYN+FIN+ACK+RST) inside an established connection and prints the
//! response matrix — Linux 3.0.0 answers, Linux 3.13 is silent, and
//! Windows 8.1 honours the RST bit regardless of the garbage around it.
//!
//! ```sh
//! cargo run --release --example fingerprint
//! ```

use snake_netsim::SimTime;
use snake_packet::tcp::TcpFlags;
use snake_tcp::{Connection, Profile, Seg, State};

fn probe(profile: &Profile, flags: TcpFlags) -> &'static str {
    // Build an established connection pair in memory.
    let mut client = Connection::client(profile.clone(), 1_000);
    let mut server = Connection::server(profile.clone(), 9_000);
    let mut out = Vec::new();
    client.open(&mut out);
    let syn = first_transmit(&out);
    out.clear();
    server.on_segment(syn, t(1), &mut out);
    let synack = first_transmit(&out);
    out.clear();
    client.on_segment(synack, t(2), &mut out);
    let ack = first_transmit(&out);
    out.clear();
    server.on_segment(ack, t(3), &mut out);
    out.clear();

    // Fire the probe at the client and observe its reaction. The client's
    // rcv_nxt after the handshake is the server's ISS + 1.
    let probe = Seg {
        seq: 9_001,
        ack: 0,
        flags,
        window: 65_535,
        urgent_ptr: 0,
        payload_len: 0,
    };
    client.on_segment(probe, t(4), &mut out);
    let replied = out
        .iter()
        .any(|e| matches!(e, snake_tcp::ConnEvent::Transmit(_)));
    match (client.state(), replied) {
        (State::Closed, _) => "RESET",
        (_, true) => "replies",
        (_, false) => "silent",
    }
}

fn first_transmit(events: &[snake_tcp::ConnEvent]) -> Seg {
    events
        .iter()
        .find_map(|e| match e {
            snake_tcp::ConnEvent::Transmit(s) => Some(*s),
            _ => None,
        })
        .expect("transmission")
}

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn main() {
    let probes: [(&str, TcpFlags); 4] = [
        ("null flags", TcpFlags::none()),
        (
            "SYN+FIN",
            TcpFlags {
                syn: true,
                fin: true,
                ..TcpFlags::none()
            },
        ),
        (
            "SYN+FIN+ACK+PSH",
            TcpFlags {
                syn: true,
                fin: true,
                ack: true,
                psh: true,
                ..TcpFlags::none()
            },
        ),
        (
            "SYN+FIN+ACK+RST",
            TcpFlags {
                syn: true,
                fin: true,
                ack: true,
                rst: true,
                ..TcpFlags::none()
            },
        ),
    ];

    print!("| {:<15} |", "Probe");
    let profiles = Profile::all();
    for p in &profiles {
        print!(" {:<12} |", p.name);
    }
    println!();
    print!("|-----------------|");
    for _ in &profiles {
        print!("--------------|");
    }
    println!();
    for (name, flags) in probes {
        print!("| {name:<15} |");
        for p in &profiles {
            print!(" {:<12} |", probe(p, flags));
        }
        println!();
    }
    println!(
        "\nDistinct response columns fingerprint the implementation — the\n\
         paper's \"Packets with Invalid Flags\" finding (Table II, row 2)."
    );
}
