//! State-machine inference from traffic — SNAKE without a specification.
//!
//! The paper needs a state machine as input and points at inference work
//! for proprietary protocols (§I). This example closes that loop inside
//! the reproduction: it records several TCP connections with the
//! simulator's packet capture, converts them into per-endpoint event
//! traces, infers a machine with k-tails
//! (`snake_statemachine::infer_machine`), prints it as dot, and shows a
//! tracker following a fresh connection on the *inferred* machine.
//!
//! ```sh
//! cargo run --release --example infer_machine
//! ```

use snake_netsim::{Addr, Dumbbell, DumbbellSpec, SimTime, Simulator};
use snake_proxy::{ProtocolAdapter, TcpAdapter};
use snake_statemachine::{infer_machine, Dir, Event, InferenceConfig, Tracker};
use snake_tcp::{Profile, ServerApp, TcpHost};

/// Runs one bounded download and returns the client's event trace
/// (classified packet types, send/recv) extracted from the capture.
fn record_trace(seed: u64, bytes: u64) -> Vec<Event> {
    let mut sim = Simulator::new(seed);
    let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
    let mut server = TcpHost::new(Profile::linux_3_13());
    server.listen(80, ServerApp::bulk_sender(bytes));
    sim.set_agent(d.server1, server);
    let mut client = TcpHost::new(Profile::linux_3_13());
    client.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
    sim.set_agent(d.client1, client);
    sim.enable_trace(100_000);
    sim.run_until(SimTime::from_secs(5));
    // The transfer finished; the client application closes.
    sim.schedule_control(SimTime::from_secs(5), d.client1, |agent, ctx| {
        let any: &mut dyn std::any::Any = agent;
        any.downcast_mut::<TcpHost>().unwrap().close_all(ctx);
    });
    sim.run_until(SimTime::from_secs(10));

    let adapter = TcpAdapter;
    let mut events = Vec::new();
    for r in sim.trace().expect("tracing enabled").records() {
        // Only the client's access link, deduplicated per packet id: each
        // packet is captured once per hop.
        if r.link != d.proxy_link {
            continue;
        }
        let Some(ptype) = adapter.classify(&r.header, r.payload_len) else {
            continue;
        };
        let dir = if r.src.node == d.client1 {
            Dir::Send
        } else {
            Dir::Recv
        };
        events.push(Event::new(dir, ptype));
    }
    events
}

fn main() {
    // Record five connections of different lengths.
    let traces: Vec<Vec<Event>> = (0..5)
        .map(|i| record_trace(100 + i, 50_000 + 200_000 * i))
        .collect();
    let total: usize = traces.iter().map(Vec::len).sum();
    println!(
        "recorded {} connections, {} events total",
        traces.len(),
        total
    );

    let machine =
        infer_machine("inferred_tcp_client", &traces, InferenceConfig::default()).unwrap();
    println!(
        "\ninferred machine: {} states, {} transitions\n",
        machine.state_count(),
        machine.transitions().len()
    );
    println!("{}", machine.to_dot());

    // Track a sixth, unseen connection with the inferred machine.
    let fresh = record_trace(999, 400_000);
    let mut tracker = Tracker::new(machine.clone(), "S0").unwrap();
    let mut t = 0u64;
    for e in &fresh {
        tracker.observe(e.dir, &e.packet_type, t);
        t += 1_000_000;
    }
    println!(
        "tracked an unseen connection: {} transitions followed, final state {}",
        tracker.transitions_taken(),
        tracker.current_name()
    );
    println!(
        "\nThe inferred machine keys the same (state, packet type) strategy\n\
         space SNAKE uses with a specification-provided machine — the paper's\n\
         path to testing proprietary protocols."
    );
}
