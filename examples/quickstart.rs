//! Quickstart: test one attack strategy against one implementation.
//!
//! Runs the baseline (no-attack) scenario and then a single strategy —
//! dropping the RSTs a Linux client emits after aborting, the trigger of
//! the CLOSE_WAIT resource-exhaustion attack (paper §VI-A.1) — and prints
//! the detection verdict.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use snake_core::{detect, Executor, ProtocolKind, ScenarioSpec, DEFAULT_THRESHOLD};
use snake_proxy::{BasicAttack, Endpoint, Strategy, StrategyKind};
use snake_tcp::Profile;

fn main() {
    let spec = ScenarioSpec::evaluation(ProtocolKind::Tcp(Profile::linux_3_0_0()));

    println!(
        "== SNAKE quickstart: {} ==",
        spec.protocol().implementation_name()
    );
    println!("running baseline (no attack)...");
    let baseline = Executor::run(&spec, None);
    println!(
        "  target {:.2} Mbit/s, competing {:.2} Mbit/s, leaked sockets {}",
        mbps(baseline.target_bytes, spec.data_secs()),
        mbps(baseline.competing_bytes, spec.data_secs()),
        baseline.leaked_sockets
    );

    // The CLOSE_WAIT attack: the aborting client's RSTs (sent while the
    // tracker still has it in FIN_WAIT_1 — sending a RST is not a
    // lifecycle transition in RFC 793's diagram) are dropped.
    let strategy = Strategy {
        id: 1,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            state: "FIN_WAIT_1".into(),
            packet_type: "RST".into(),
            attack: BasicAttack::Drop { percent: 100 },
        },
    };
    println!("\nrunning strategy: {}", strategy.describe());
    let attacked = Executor::run(&spec, Some(strategy));
    println!(
        "  target {:.2} Mbit/s, competing {:.2} Mbit/s, leaked sockets {} (CLOSE_WAIT: {})",
        mbps(attacked.target_bytes, spec.data_secs()),
        mbps(attacked.competing_bytes, spec.data_secs()),
        attacked.leaked_sockets,
        attacked.leaked_close_wait
    );

    let verdict = detect(&baseline, &attacked, DEFAULT_THRESHOLD);
    println!(
        "\nverdict: flagged={} effects={:?}",
        verdict.flagged(),
        verdict.labels()
    );
    if verdict.socket_leak {
        println!(
            "=> server socket wedged in CLOSE_WAIT: the CLOSE_WAIT resource \
             exhaustion attack (paper Table II, row 1)"
        );
    }
}

fn mbps(bytes: u64, secs: u64) -> f64 {
    bytes as f64 * 8.0 / secs as f64 / 1e6
}
