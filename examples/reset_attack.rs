//! Replay of the Reset and SYN-Reset attacks (paper §VI-A.4/5) against
//! every TCP implementation.
//!
//! Both attacks brute-force a sequence-valid packet by injecting spoofed
//! packets at receive-window strides across the whole 32-bit sequence
//! space [Watson 2004]. Because the behaviour they exploit is mandated by
//! RFC 793, every implementation is vulnerable — which this replay
//! confirms.
//!
//! ```sh
//! cargo run --release --example reset_attack
//! ```

use snake_core::{detect, Executor, ProtocolKind, ScenarioSpec, DEFAULT_THRESHOLD};
use snake_proxy::{Endpoint, InjectDirection, InjectionAttack, Strategy, StrategyKind};
use snake_tcp::Profile;

fn hitseq(id: u64, packet_type: &str) -> Strategy {
    Strategy {
        id,
        kind: StrategyKind::OnState {
            endpoint: Endpoint::Client,
            state: "ESTABLISHED".into(),
            attack: InjectionAttack::HitSeqWindow {
                packet_type: packet_type.into(),
                direction: InjectDirection::ToClient,
                stride: 65_535,
                count: 66_000,
                rate_pps: 20_000,
                inert: false,
            },
        },
    }
}

fn main() {
    println!("| Implementation | Attack    | Baseline Mbit/s | Attacked Mbit/s | Verdict |");
    println!("|----------------|-----------|-----------------|-----------------|---------|");
    for profile in Profile::all() {
        let name = profile.name.clone();
        let spec = ScenarioSpec::evaluation(ProtocolKind::Tcp(profile));
        let baseline = Executor::run(&spec, None);
        for (attack_name, ptype) in [("Reset", "RST"), ("SYN-Reset", "SYN")] {
            let attacked = Executor::run(&spec, Some(hitseq(1, ptype)));
            let verdict = detect(&baseline, &attacked, DEFAULT_THRESHOLD);
            println!(
                "| {:<14} | {:<9} | {:>15.2} | {:>15.2} | {:<7} |",
                name,
                attack_name,
                mbps(baseline.target_bytes, spec.data_secs()),
                mbps(attacked.target_bytes, spec.data_secs()),
                if verdict.flagged() { "ATTACK" } else { "clean" }
            );
        }
    }
    println!(
        "\nAll implementations are vulnerable: the in-window reset behaviour is\n\
         part of the TCP specification itself (paper §VI-A.4/5)."
    );
}

fn mbps(bytes: u64, secs: u64) -> f64 {
    bytes as f64 * 8.0 / secs as f64 / 1e6
}
