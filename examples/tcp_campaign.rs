//! Full TCP campaign: the state-based attack search against all four TCP
//! implementations of the paper, regenerating the TCP rows of Table I and
//! the TCP attacks of Table II.
//!
//! ```sh
//! cargo run --release --example tcp_campaign            # full search
//! cargo run --release --example tcp_campaign -- 200     # capped per impl
//! ```

use snake_core::{
    render_table1, render_table2, Campaign, CampaignConfig, ProtocolKind, ScenarioSpec,
};
use snake_tcp::Profile;

fn main() {
    let cap: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let mut results = Vec::new();
    for profile in Profile::all() {
        let name = profile.name.clone();
        eprintln!("== campaign: {name} ==");
        let spec = ScenarioSpec::evaluation(ProtocolKind::Tcp(profile));
        let mut builder = CampaignConfig::builder(spec);
        if let Some(cap) = cap {
            builder = builder.cap(cap);
        }
        let config = builder.build().expect("valid config");
        let start = std::time::Instant::now();
        let result = Campaign::run(config).expect("campaign preconditions hold");
        eprintln!(
            "   {} strategies in {:.1?}; {} flagged, {} true, {} unique attacks",
            result.strategies_tried(),
            start.elapsed(),
            result.attack_strategies_found(),
            result.true_attack_strategies(),
            result.true_attacks()
        );
        for f in &result.findings {
            eprintln!(
                "   * {} ({}) — e.g. {}",
                f.attack.name(),
                f.effects.join(","),
                f.example
            );
        }
        results.push(result);
    }

    println!("\nTable I (TCP rows):\n{}", render_table1(&results));
    println!("Table II (TCP attacks):\n{}", render_table2(&results));
}
