#!/usr/bin/env bash
# Campaign throughput benchmark, end to end.
#
# Times the quick TCP Linux-3.13 campaign (200-strategy cap) three-and-a-
# half ways and writes BENCH_campaign.json at the repo root (appending the
# run to the file's `history` array rather than overwriting the trend):
#
#   1. memoized executor      (current tree)      — the default runtime:
#      snapshot forking plus wire-effect memoization (inert elision,
#      OnState class sharing, fingerprint verdict cache, no-op halt);
#      the JSON records its memo / short-circuit hit rates
#   2. snapshot-fork executor (current tree)      — memoization off
#   3. from-scratch executor  (current tree)      — same binary, forking off
#   4. from-scratch executor  (pre-snapshot-fork) — the executor as it was
#      before forked execution existed, built from PRE_PR_REF in a
#      throwaway worktree using scripts/prepr_campaign.rs
#
# (1)–(3) come from the `campaign_throughput` bench; (4) is measured here
# and handed to the bench via SNAKE_PRE_PR_WALL_SECS so the JSON can
# record the cross-commit speedup alongside the same-binary one. If the
# comparator commit is unreachable (shallow clone) the script degrades to
# the same-binary comparison only.
#
# The bench additionally runs a warm-store rep: mode (1) twice against one
# persistent memo store (--memo-store), cold then warm, asserting the warm
# rerun is bit-identical and serves >= 50% of its eligible runs from disk;
# the figures land in the JSON's `warm_store` block. The store file is
# kept at $SNAKE_MEMO_STORE when set (CI archives it), else a temp file.
#
# Finally, a sharded rep runs the from-scratch campaign at S in {1,2,4}
# worker *processes* (the `snake shard-worker` executors, spawned from the
# binary built below), asserting outcome identity with the in-process run
# and recording strategies/sec per shard count in the JSON's `sharded`
# block. The >=1.6x S=4 scaling gate only arms on machines with >= 4 cores.
set -euo pipefail
cd "$(dirname "$0")/.."

# The sharded rep spawns worker processes from the release `snake` binary;
# `cargo bench` alone does not build workspace bins, so build it here.
cargo build --release -p snake-core --bin snake
SNAKE_BIN="$(pwd)/target/release/snake"
export SNAKE_BIN

# The last commit before snapshot-fork execution landed: every strategy ran
# from scratch and the event-loop hot path still cloned per hop.
PRE_PR_REF="${PRE_PR_REF:-a80cb1c638d462aa5182061c4868d712e1f13e12}"
WORKTREE=.bench-prepr

pre_pr_secs=""
if git rev-parse --verify --quiet "${PRE_PR_REF}^{commit}" >/dev/null; then
    trap 'git worktree remove --force "$WORKTREE" 2>/dev/null || true' EXIT
    git worktree add --force "$WORKTREE" "$PRE_PR_REF"
    mkdir -p "$WORKTREE/crates/core/examples"
    cp scripts/prepr_campaign.rs "$WORKTREE/crates/core/examples/prepr_campaign.rs"
    (cd "$WORKTREE" && cargo build --release --example prepr_campaign)
    pre_pr_secs=$("$WORKTREE/target/release/examples/prepr_campaign" \
        | sed -n 's/^PRE_PR_WALL_SECS=//p')
    echo "pre-PR from-scratch executor (${PRE_PR_REF:0:12}): ${pre_pr_secs}s"
else
    echo "warning: comparator commit $PRE_PR_REF not found; skipping" >&2
fi

SNAKE_PRE_PR_WALL_SECS="$pre_pr_secs" \
SNAKE_PRE_PR_COMMIT="$PRE_PR_REF" \
    cargo bench -p snake-bench --bench campaign_throughput
