//! Pre-snapshot-fork comparator harness for `scripts/bench_campaign.sh`.
//!
//! This file is compiled *inside a git worktree of an older commit* (the
//! executor as it existed before snapshot-fork execution landed) and runs
//! the same campaign the `campaign_throughput` bench times: quick TCP
//! Linux 3.13, 200-strategy cap, one parameterisation per basic attack.
//! It prints a single machine-readable line the script scrapes:
//!
//! ```text
//! PRE_PR_WALL_SECS=<min wall-clock over 3 runs>
//! ```
//!
//! Only APIs that predate the snapshot-fork executor are used, so the
//! harness compiles against both the old and the current tree.

use std::time::Instant;

use snake_core::{Campaign, CampaignConfig, GenerationParams, ProtocolKind, ScenarioSpec};
use snake_tcp::Profile;

fn config(max_strategies: usize) -> CampaignConfig {
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    CampaignConfig {
        max_strategies: Some(max_strategies),
        params: GenerationParams {
            drop_percents: vec![100],
            duplicate_copies: vec![2],
            delay_secs: vec![1.0],
            batch_secs: vec![4.0],
            ..GenerationParams::default()
        },
        feedback_rounds: 2,
        retest: false,
        ..CampaignConfig::new(spec)
    }
}

fn main() {
    // Warm up the allocator and page cache outside the timed region, same
    // as the bench proper.
    Campaign::run(config(8)).expect("valid baseline");
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let result = Campaign::run(config(200)).expect("valid baseline");
        let secs = start.elapsed().as_secs_f64();
        eprintln!("pre-PR campaign: {secs:.2}s ({} strategies)", result.outcomes.len());
        best = best.min(secs);
    }
    println!("PRE_PR_WALL_SECS={best}");
}
