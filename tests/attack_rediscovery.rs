//! Rediscovery of every attack in the paper's Table II: each test replays
//! the strategy SNAKE's search generates for the attack and asserts both
//! the detection verdict and the profile specificity (vulnerable
//! implementations flag, fixed ones do not).

use snake_core::{detect, Executor, KnownAttack, ProtocolKind, ScenarioSpec, DEFAULT_THRESHOLD};
use snake_dccp::DccpProfile;
use snake_packet::FieldMutation;
use snake_proxy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, SeqChoice, Strategy, StrategyKind,
};
use snake_tcp::Profile;

fn on_packet(endpoint: Endpoint, state: &str, ptype: &str, attack: BasicAttack) -> Strategy {
    Strategy {
        id: 1,
        kind: StrategyKind::OnPacket {
            endpoint,
            state: state.into(),
            packet_type: ptype.into(),
            attack,
        },
    }
}

fn run_tcp(profile: Profile, strategy: Strategy) -> (snake_core::Verdict, snake_core::TestMetrics) {
    let spec = ScenarioSpec::evaluation(ProtocolKind::Tcp(profile));
    let baseline = Executor::run(&spec, None);
    let attacked = Executor::run(&spec, Some(strategy));
    (detect(&baseline, &attacked, DEFAULT_THRESHOLD), attacked)
}

fn run_dccp(strategy: Strategy) -> (snake_core::Verdict, snake_core::TestMetrics) {
    let spec = ScenarioSpec::evaluation(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    let baseline = Executor::run(&spec, None);
    let attacked = Executor::run(&spec, Some(strategy));
    (detect(&baseline, &attacked, DEFAULT_THRESHOLD), attacked)
}

/// Table II row 1: CLOSE_WAIT resource exhaustion — Linux only (Windows
/// aborts with a bare RST and its 5-retry give-up frees the socket).
#[test]
fn close_wait_exhaustion_on_linux_only() {
    let strategy = || {
        on_packet(
            Endpoint::Client,
            "FIN_WAIT_1",
            "RST",
            BasicAttack::Drop { percent: 100 },
        )
    };
    for profile in [Profile::linux_3_0_0(), Profile::linux_3_13()] {
        let name = profile.name.clone();
        let (verdict, metrics) = run_tcp(profile, strategy());
        assert!(verdict.socket_leak, "{name}: must leak");
        assert!(metrics.leaked_close_wait > 0, "{name}: stuck in CLOSE_WAIT");
    }
    for profile in [Profile::windows_8_1(), Profile::windows_95()] {
        let name = profile.name.clone();
        // Windows clients never send RSTs from FIN_WAIT_1 (no FIN on
        // abort), so the strategy matches nothing.
        let (verdict, _) = run_tcp(profile, strategy());
        assert!(!verdict.socket_leak, "{name}: must not leak");
    }
}

/// Table II row 3: duplicate-acknowledgment spoofing inflates a naïve
/// sender's window — Windows 95 only.
#[test]
fn dup_ack_spoofing_on_windows_95_only() {
    let strategy = || {
        on_packet(
            Endpoint::Client,
            "ESTABLISHED",
            "ACK",
            BasicAttack::Duplicate { copies: 2 },
        )
    };
    let (verdict, _) = run_tcp(Profile::windows_95(), strategy());
    assert!(
        verdict.throughput_gain,
        "Windows 95 gains from duplicated acks"
    );

    for profile in [Profile::linux_3_0_0(), Profile::linux_3_13()] {
        let name = profile.name.clone();
        let (verdict, _) = run_tcp(profile, strategy());
        assert!(
            !verdict.throughput_gain,
            "{name}: DSACK filtering prevents the gain"
        );
    }
}

/// Table II row 4/5: brute-forced sequence-valid RST / SYN resets — every
/// implementation is vulnerable (the behaviour is specified by RFC 793).
#[test]
fn reset_and_syn_reset_on_all_implementations() {
    for ptype in ["RST", "SYN"] {
        for profile in Profile::all() {
            let name = profile.name.clone();
            let strategy = Strategy {
                id: 1,
                kind: StrategyKind::OnState {
                    endpoint: Endpoint::Client,
                    state: "ESTABLISHED".into(),
                    attack: InjectionAttack::HitSeqWindow {
                        packet_type: ptype.into(),
                        direction: InjectDirection::ToClient,
                        stride: 65_535,
                        count: 66_000,
                        rate_pps: 20_000,
                        inert: false,
                    },
                },
            };
            let (verdict, _) = run_tcp(profile, strategy);
            assert!(
                verdict.throughput_degradation || verdict.establishment_prevented,
                "{name}: {ptype} window brute force must kill the connection"
            );
        }
    }
}

/// Table II row 6: duplicate-acknowledgment rate limiting — Windows 8.1's
/// harsh response to duplicate bursts collapses its window; Linux's DSACK
/// filtering keeps it fair.
#[test]
fn dup_ack_rate_limiting_on_windows_81_only() {
    let strategy = || {
        on_packet(
            Endpoint::Server,
            "ESTABLISHED",
            "PSH+ACK",
            BasicAttack::Duplicate { copies: 10 },
        )
    };
    let (verdict, _) = run_tcp(Profile::windows_8_1(), strategy());
    assert!(verdict.throughput_degradation, "Windows 8.1 degrades ~5x");

    let (verdict, _) = run_tcp(Profile::linux_3_13(), strategy());
    assert!(
        !verdict.throughput_degradation,
        "Linux shows approximately fair sharing in the same scenario"
    );
}

/// Table II row 2: invalid-flag handling differs per implementation
/// (fingerprinting). Verified at the engine level by the `fingerprint`
/// example; here we check the flag-lie strategy class is flagged on the
/// best-effort stacks via its connection impact.
#[test]
fn invalid_flag_probes_have_observable_impact() {
    let strategy = || {
        on_packet(
            Endpoint::Client,
            "ESTABLISHED",
            "ACK",
            BasicAttack::Lie {
                field: "syn".into(),
                mutation: FieldMutation::Set(1),
            },
        )
    };
    // Setting SYN on the client's own acks makes them in-window SYNs: the
    // server resets (RFC 793) — observable on every implementation.
    let (verdict, _) = run_tcp(Profile::linux_3_0_0(), strategy());
    assert!(
        verdict.flagged(),
        "in-window SYN via flag lie must be flagged"
    );
}

/// Table II row 7: DCCP acknowledgment mung — invalidated acks pin the
/// sender at minimum rate; its bounded send queue then cannot drain and
/// the socket hangs.
#[test]
fn dccp_ack_mung_resource_exhaustion() {
    let strategy = on_packet(
        Endpoint::Client,
        "OPEN",
        "ACK",
        BasicAttack::Drop { percent: 100 },
    );
    let (verdict, metrics) = run_dccp(strategy);
    assert!(verdict.socket_leak, "server socket must hang: {metrics:?}");
    assert!(
        verdict.throughput_degradation,
        "sender pinned at minimum rate"
    );
}

/// Table II row 8: in-window acknowledgment sequence-number modification —
/// a +1 bump forces a SYNC resync and costs a window of packets, over and
/// over.
#[test]
fn dccp_in_window_ack_seq_modification() {
    let strategy = on_packet(
        Endpoint::Client,
        "OPEN",
        "ACK",
        BasicAttack::Lie {
            field: "seq".into(),
            mutation: FieldMutation::Add(25),
        },
    );
    let (verdict, metrics) = run_dccp(strategy);
    assert!(verdict.throughput_degradation, "resync storm: {metrics:?}");
    assert!(metrics.proxy.packets_seen > 0);
}

/// Table II row 9: REQUEST connection termination — any non-RESPONSE
/// packet with arbitrary sequence numbers resets a connection in REQUEST,
/// because the RFC (and Linux) check the type before the sequence numbers.
#[test]
fn dccp_request_connection_termination() {
    let strategy = Strategy {
        id: 1,
        kind: StrategyKind::OnState {
            endpoint: Endpoint::Client,
            state: "REQUEST".into(),
            attack: InjectionAttack::Inject {
                packet_type: "SYNC".into(),
                seq: SeqChoice::Random,
                direction: InjectDirection::ToClient,
                repeat: 3,
            },
        },
    };
    let (verdict, _) = run_dccp(strategy);
    assert!(
        verdict.establishment_prevented,
        "connection must never establish"
    );
}

/// The classifier names each rediscovered attack as Table II does.
#[test]
fn classifier_names_the_close_wait_attack() {
    let strategy = on_packet(
        Endpoint::Client,
        "FIN_WAIT_1",
        "RST",
        BasicAttack::Drop { percent: 100 },
    );
    let protocol = ProtocolKind::Tcp(Profile::linux_3_0_0());
    let spec = ScenarioSpec::evaluation(protocol.clone());
    let baseline = Executor::run(&spec, None);
    let attacked = Executor::run(&spec, Some(strategy.clone()));
    let verdict = detect(&baseline, &attacked, DEFAULT_THRESHOLD);
    let attack = snake_core::classify(&protocol, &strategy, &verdict, &attacked);
    let classified = snake_core::cluster_attacks(&[(strategy, verdict, attack)]);
    assert_eq!(classified[0].attack, KnownAttack::CloseWaitExhaustion);
}
