//! Fault-tolerance and resumability of the campaign runtime: panic
//! isolation, event-budget truncation, the streaming JSONL journal, and
//! kill-and-resume reproducing the same final table.

use std::path::PathBuf;
use std::sync::Arc;

use snake_core::{
    journal, Campaign, CampaignConfig, CampaignError, CampaignResult, OutcomeKind, ProtocolKind,
    ScenarioSpec,
};
use snake_tcp::Profile;

fn quick_tcp() -> ScenarioSpec {
    ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()))
}

fn temp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "snake-campaign-runtime-{}-{name}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&p).ok();
    p
}

fn table_key(result: &CampaignResult) -> (String, usize, usize, usize, usize, usize, usize) {
    (
        result.table_row(),
        result.strategies_tried(),
        result.attack_strategies_found(),
        result.true_attack_strategies(),
        result.true_attacks(),
        result.errored(),
        result.truncated(),
    )
}

#[test]
fn panicking_strategy_is_isolated_and_journaled() {
    let path = temp_journal("panic");
    let config = CampaignConfig::builder(quick_tcp())
        .cap(10)
        .feedback_rounds(1)
        .retest(false)
        .parallelism(4)
        .journal(path.clone())
        // Crash the engine run for two specific strategies, inside the
        // worker, the way an engine bug would.
        .fault_hook(Arc::new(|s| {
            if s.id == 3 || s.id == 7 {
                panic!("injected engine fault on strategy {}", s.id);
            }
        }))
        .build()
        .expect("valid config");
    let result = Campaign::run(config).expect("panics must not abort the campaign");

    // The batch survived: every strategy has an outcome, the two injected
    // faults are reported as errored with their panic message, and the
    // Table-I error counter reflects them.
    assert_eq!(result.strategies_tried(), 10);
    assert_eq!(result.errored(), 2);
    for id in [3u64, 7] {
        let o = result
            .outcomes
            .iter()
            .find(|o| o.strategy.id == id)
            .unwrap();
        assert_eq!(o.outcome_kind, OutcomeKind::Errored);
        let msg = o.error.as_deref().unwrap_or("");
        assert!(msg.contains("injected engine fault"), "{msg}");
        assert!(
            !o.verdict.flagged(),
            "errored runs must not count as attacks"
        );
        assert!(!o.is_true_attack());
    }
    assert!(
        result.table_row().contains("|       2 |"),
        "errored column: {}",
        result.table_row()
    );

    // The journal recorded all ten outcomes, errors included.
    let loaded = journal::load(&path).unwrap();
    assert_eq!(loaded.outcomes.len(), 10);
    let journaled_errors: Vec<u64> = loaded
        .outcomes
        .iter()
        .filter(|o| o.outcome_kind == OutcomeKind::Errored)
        .map(|o| o.strategy.id)
        .collect();
    assert_eq!(journaled_errors.len(), 2);
    assert!(journaled_errors.contains(&3) && journaled_errors.contains(&7));
    std::fs::remove_file(&path).ok();
}

#[test]
fn kill_and_resume_reproduces_the_same_table() {
    let journal_a = temp_journal("full");
    let journal_b = temp_journal("resumed");
    let config = |journal: PathBuf, resume: bool| {
        CampaignConfig::builder(quick_tcp())
            .cap(12)
            .feedback_rounds(1)
            .retest(false)
            .parallelism(2)
            .journal(journal)
            .resume(resume)
            .build()
            .expect("valid config")
    };

    // Reference: an uninterrupted run.
    let full = Campaign::run(config(journal_a.clone(), false)).unwrap();

    // Simulated kill: keep the header and the first five outcome lines
    // (plus a torn partial line, as a killed writer would leave), then
    // resume from that journal.
    let text = std::fs::read_to_string(&journal_a).unwrap();
    let mut kept: Vec<&str> = text.lines().take(6).collect();
    let torn = "{\"type\":\"outcome\",\"outcome\":\"ok\",\"err";
    kept.push(torn);
    std::fs::write(&journal_b, kept.join("\n")).unwrap();

    let resumed = Campaign::run(config(journal_b.clone(), true)).unwrap();
    assert_eq!(resumed.resumed, 5, "five journaled outcomes reused");
    assert_eq!(resumed.journal_lines_skipped, 1, "torn final line skipped");
    assert_eq!(
        table_key(&resumed),
        table_key(&full),
        "resume must reproduce the table"
    );
    let verdicts_full: Vec<_> = full
        .outcomes
        .iter()
        .map(|o| (o.strategy.id, o.verdict, o.outcome_kind))
        .collect();
    let verdicts_resumed: Vec<_> = resumed
        .outcomes
        .iter()
        .map(|o| (o.strategy.id, o.verdict, o.outcome_kind))
        .collect();
    assert_eq!(verdicts_full, verdicts_resumed);

    // The resumed journal now also contains the re-run outcomes: resuming
    // from it again reuses everything and runs nothing.
    let again = Campaign::run(config(journal_b.clone(), true)).unwrap();
    assert_eq!(again.resumed, 12);
    assert_eq!(table_key(&again), table_key(&full));

    std::fs::remove_file(&journal_a).ok();
    std::fs::remove_file(&journal_b).ok();
}

#[test]
fn resume_refuses_a_journal_from_a_different_campaign() {
    let path = temp_journal("mismatch");
    let spec = quick_tcp();
    let config = |spec: ScenarioSpec, resume: bool| {
        CampaignConfig::builder(spec)
            .cap(3)
            .feedback_rounds(1)
            .retest(false)
            .journal(path.clone())
            .resume(resume)
            .build()
            .expect("valid config")
    };
    Campaign::run(config(spec.clone(), false)).unwrap();

    // Same journal, different seed: the outcomes are not comparable.
    let spec = spec.clone().with_seed(spec.seed().wrapping_add(99));
    match Campaign::run(config(spec, true)) {
        Err(CampaignError::JournalMismatch { detail, .. }) => {
            assert!(detail.contains("seed"), "{detail}");
        }
        other => panic!("expected JournalMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_refuses_a_journal_with_different_memoization() {
    // Memo markers are part of each journaled outcome, so replaying a
    // memoized journal into an unmemoized campaign (or vice versa) would
    // silently change the resumed counters. The header records the
    // setting and resume must reject the drift, naming it.
    let path = temp_journal("memo-drift");
    let config = |memoize: bool, resume: bool| {
        CampaignConfig::builder(quick_tcp())
            .cap(3)
            .feedback_rounds(1)
            .retest(false)
            .memoize(memoize)
            .journal(path.clone())
            .resume(resume)
            .build()
            .expect("valid config")
    };
    Campaign::run(config(true, false)).unwrap();

    match Campaign::run(config(false, true)) {
        Err(CampaignError::JournalMismatch { detail, .. }) => {
            assert!(detail.contains("memoization"), "{detail}");
            assert!(
                detail.contains("memoize=true") && detail.contains("memoize=false"),
                "the detail must name both sides: {detail}"
            );
        }
        other => panic!("expected JournalMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_refuses_a_journal_with_different_impairment() {
    // The impairment spec changes every wire trace, so outcomes journaled
    // under one link profile are not comparable to a campaign running
    // another. The header records the spec and resume must reject drift.
    let path = temp_journal("impair-drift");
    let config = |spec: ScenarioSpec, resume: bool| {
        CampaignConfig::builder(spec)
            .cap(3)
            .feedback_rounds(1)
            .retest(false)
            .journal(path.clone())
            .resume(resume)
            .build()
            .expect("valid config")
    };
    Campaign::run(config(quick_tcp(), false)).unwrap();

    let impaired = quick_tcp()
        .with_impairment(snake_netsim::Impairment::preset("light").expect("built-in preset"));
    match Campaign::run(config(impaired, true)) {
        Err(CampaignError::JournalMismatch { detail, .. }) => {
            assert!(detail.contains("impairment"), "{detail}");
            assert!(
                detail.contains("none"),
                "the detail must name the journal's impairment: {detail}"
            );
        }
        other => panic!("expected JournalMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn budget_truncation_is_deterministic_and_reported() {
    // A budget far below what the quick scenario needs: every strategy run
    // is cut short and reported, not silently misjudged.
    let spec = quick_tcp().with_event_budget(5_000);
    let config = |spec: ScenarioSpec| {
        CampaignConfig::builder(spec)
            .cap(6)
            .feedback_rounds(1)
            .retest(false)
            .parallelism(3)
            .build()
            .expect("valid config")
    };
    let a = Campaign::run(config(spec.clone())).unwrap();
    let b = Campaign::run(config(spec)).unwrap();

    assert_eq!(a.truncated(), 6, "all runs hit the budget");
    assert_eq!(
        a.attack_strategies_found(),
        0,
        "truncated runs yield no verdicts"
    );
    let ka: Vec<_> = a
        .outcomes
        .iter()
        .map(|o| (o.strategy.id, o.outcome_kind))
        .collect();
    let kb: Vec<_> = b
        .outcomes
        .iter()
        .map(|o| (o.strategy.id, o.outcome_kind))
        .collect();
    assert_eq!(ka, kb, "same seed, same budget, same truncation set");
    assert_eq!(a.table_row(), b.table_row());

    // A generous budget changes nothing relative to no budget at all.
    let unbudgeted_spec = quick_tcp().without_event_budget();
    let unbudgeted = Campaign::run(config(unbudgeted_spec.clone())).unwrap();
    let generous = Campaign::run(config(unbudgeted_spec.with_event_budget(u64::MAX))).unwrap();
    assert_eq!(generous.truncated(), 0);
    assert_eq!(generous.table_row(), unbudgeted.table_row());
}

#[test]
fn journal_and_faults_compose_with_budgets() {
    // All three runtime guards at once: a panicking strategy, a strategy
    // budget low enough to truncate nothing in the quick scenario (sanity
    // that Ok outcomes still dominate), and the journal capturing every
    // outcome kind.
    let path = temp_journal("compose");
    let config = CampaignConfig::builder(quick_tcp())
        .cap(8)
        .feedback_rounds(1)
        .retest(false)
        .parallelism(4)
        .journal(path.clone())
        .fault_hook(Arc::new(|s| {
            if s.id == 1 {
                panic!("boom");
            }
        }))
        .build()
        .expect("valid config");
    let result = Campaign::run(config).unwrap();
    assert_eq!(result.strategies_tried(), 8);
    assert_eq!(result.errored(), 1);
    let loaded = journal::load(&path).unwrap();
    assert_eq!(loaded.outcomes.len(), 8);
    let tsv = result.export_outcomes_tsv();
    assert!(
        tsv.contains("errored"),
        "TSV outcome column records the fault"
    );
    std::fs::remove_file(&path).ok();
}
