//! Controller crash-and-resume: a distributed campaign whose *controller*
//! is killed mid-run (workers mid-range) must resume from the workers'
//! journal segments with **zero** strategy re-evaluations, and the
//! resumed run's TSV and manifest (modulo the wall-clock `timing` and
//! scheduling-dependent `shards` sections, plus the resume tallies
//! themselves) must be byte-identical to an uninterrupted run's.
//!
//! These tests drive the real `snake` binary end to end: a reference
//! campaign, a campaign killed at a fixed admission index through the
//! `SNAKE_CONTROLLER_EXIT_AT` kill-switch (exit code 23, right after the
//! Nth journal write — deterministic by construction, because admission
//! is strictly index-ordered), and a `--resume` run over the same journal
//! and segment directory.

use std::path::PathBuf;
use std::process::Command;

use snake_json::Value;

/// Exit code `SNAKE_CONTROLLER_EXIT_AT` terminates the controller with.
const KILL_EXIT_CODE: i32 = 23;

/// Admission index to kill at: with `--cap 10 --shards 2` every range is
/// dispatched within the first couple of admissions, so by the 4th both
/// workers are mid-range with buffered work — the interesting crash.
const KILL_AT: &str = "4";

fn snake_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_snake"))
}

/// `<journal>.segments` — the worker segment directory the campaign
/// derives from its journal path.
fn segments_dir(journal: &std::path::Path) -> PathBuf {
    let mut s = journal.as_os_str().to_owned();
    s.push(".segments");
    PathBuf::from(s)
}

/// A scratch directory unique to this test run.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "snake-controller-resume-{}-{label}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The six-profile matrix: every implementation under test plus one
/// impaired-link configuration, as extra `snake campaign` arguments.
fn profiles() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("linux-3.0.0", vec!["--impl", "linux-3.0.0"]),
        ("linux-3.13", vec!["--impl", "linux-3.13"]),
        ("windows-8.1", vec!["--impl", "windows-8.1"]),
        ("windows-95", vec!["--impl", "windows-95"]),
        ("dccp", vec!["--impl", "dccp"]),
        (
            "linux-3.13+lossy",
            vec!["--impl", "linux-3.13", "--impair", "lossy"],
        ),
    ]
}

struct RunFiles {
    journal: PathBuf,
    tsv: PathBuf,
    manifest: PathBuf,
}

impl RunFiles {
    fn new(dir: &std::path::Path, label: &str) -> RunFiles {
        RunFiles {
            journal: dir.join(format!("{label}.journal.jsonl")),
            tsv: dir.join(format!("{label}.tsv")),
            manifest: dir.join(format!("{label}.manifest.json")),
        }
    }

    fn args(&self) -> Vec<String> {
        vec![
            "--journal".into(),
            self.journal.display().to_string(),
            "--tsv".into(),
            self.tsv.display().to_string(),
            "--manifest".into(),
            self.manifest.display().to_string(),
        ]
    }
}

/// Runs `snake campaign --quick --shards 2 --cap 10` with the given
/// profile and per-run file arguments, returning the exit code.
fn campaign(profile: &[&str], files: &RunFiles, extra: &[&str], kill_at: Option<&str>) -> i32 {
    let mut cmd = Command::new(snake_bin());
    cmd.arg("campaign")
        .args(profile)
        .args(["--quick", "--shards", "2", "--cap", "10"])
        .args(files.args())
        .args(extra)
        .env_remove("SNAKE_CONTROLLER_EXIT_AT")
        .env_remove("SNAKE_SHARD_EXIT_AFTER");
    if let Some(n) = kill_at {
        cmd.env("SNAKE_CONTROLLER_EXIT_AT", n);
    }
    let output = cmd.output().expect("snake campaign runs");
    output.status.code().unwrap_or_else(|| {
        panic!(
            "campaign terminated by signal: {}",
            String::from_utf8_lossy(&output.stderr)
        )
    })
}

/// The manifest with its nondeterministic sections (`timing`, `shards`)
/// and the resume tallies (`run.resumed`, `run.journal_lines_skipped` —
/// legitimately nonzero only on the resumed run) removed: the bit-identity
/// surface between an uninterrupted run and a crash-resumed one.
fn stable_manifest(path: &std::path::Path) -> String {
    let raw =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading manifest {path:?}: {e}"));
    let Value::Obj(pairs) = snake_json::parse(raw.trim()).expect("manifest parses") else {
        panic!("manifest is not an object");
    };
    Value::Obj(
        pairs
            .into_iter()
            .filter(|(k, _)| k != "timing" && k != "shards")
            .map(|(k, v)| {
                if k != "run" {
                    return (k, v);
                }
                let Value::Obj(run) = v else { return (k, v) };
                (
                    k,
                    Value::Obj(
                        run.into_iter()
                            .filter(|(rk, _)| rk != "resumed" && rk != "journal_lines_skipped")
                            .collect(),
                    ),
                )
            })
            .collect(),
    )
    .to_string_compact()
}

/// Pulls one numeric field out of the manifest's `shards` section.
fn shards_counter(path: &std::path::Path, field: &str) -> u64 {
    let raw = std::fs::read_to_string(path).expect("manifest readable");
    let parsed = snake_json::parse(raw.trim()).expect("manifest parses");
    let section = parsed
        .get("shards")
        .expect("sharded run has a shards section");
    section
        .get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("shards.{field} missing from {path:?}"))
}

#[test]
fn killed_controller_resumes_from_segments_without_reevaluating() {
    for (name, profile) in profiles() {
        let dir = scratch(name);

        // Uninterrupted reference: 2 shards, straight through.
        let reference = RunFiles::new(&dir, "reference");
        assert_eq!(
            campaign(&profile, &reference, &[], None),
            0,
            "{name}: reference campaign must succeed"
        );

        // Crash: the controller exits right after the 4th admission's
        // journal write, while both workers hold undelivered work.
        let crashed = RunFiles::new(&dir, "crashed");
        assert_eq!(
            campaign(&profile, &crashed, &[], Some(KILL_AT)),
            KILL_EXIT_CODE,
            "{name}: the kill-switch must fire at admission {KILL_AT}"
        );
        let segments = segments_dir(&crashed.journal);
        assert!(
            segments.is_dir() && segments.read_dir().unwrap().next().is_some(),
            "{name}: the crashed run must leave journal segments behind"
        );

        // Resume over the same journal + segments: every outcome the
        // crashed run evaluated — journaled *or* stranded in a worker
        // segment — replays through admission; nothing is re-dispatched.
        assert_eq!(
            campaign(&profile, &crashed, &["--resume"], None),
            0,
            "{name}: the resumed campaign must succeed"
        );

        assert_eq!(
            std::fs::read(&reference.tsv).unwrap(),
            std::fs::read(&crashed.tsv).unwrap(),
            "{name}: resumed TSV must be byte-identical to the uninterrupted run"
        );
        assert_eq!(
            stable_manifest(&reference.manifest),
            stable_manifest(&crashed.manifest),
            "{name}: manifests must agree outside timing/shards/resume tallies"
        );
        assert_eq!(
            shards_counter(&crashed.manifest, "workers"),
            2,
            "{name}: the resumed run must still run its worker pool"
        );
        assert_eq!(
            shards_counter(&crashed.manifest, "ranges_dispatched"),
            0,
            "{name}: a full segment prefetch means zero re-evaluated strategies"
        );
        assert!(
            !segments.exists(),
            "{name}: a completed resume clears the segment directory"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn a_resume_without_segments_still_completes_by_reevaluating() {
    // Segments are an optimization, not a correctness requirement: if the
    // segment directory is lost (worker on another machine, wiped tmp),
    // `--resume` falls back to re-dispatching the missing strategies and
    // still converges to the identical output.
    let (name, profile) = ("linux-3.13", ["--impl", "linux-3.13"]);
    let dir = scratch("no-segments");

    let reference = RunFiles::new(&dir, "reference");
    assert_eq!(campaign(&profile, &reference, &[], None), 0);

    let crashed = RunFiles::new(&dir, "crashed");
    assert_eq!(
        campaign(&profile, &crashed, &[], Some(KILL_AT)),
        KILL_EXIT_CODE
    );
    let segments = segments_dir(&crashed.journal);
    std::fs::remove_dir_all(&segments).expect("segments existed");

    assert_eq!(campaign(&profile, &crashed, &["--resume"], None), 0);
    assert_eq!(
        std::fs::read(&reference.tsv).unwrap(),
        std::fs::read(&crashed.tsv).unwrap(),
        "{name}: output must be identical even with the segments gone"
    );
    assert!(
        shards_counter(&crashed.manifest, "ranges_dispatched") > 0,
        "{name}: without segments the tail really is re-evaluated"
    );

    std::fs::remove_dir_all(&dir).ok();
}
