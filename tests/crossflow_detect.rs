//! Cross-flow detection end to end: a seeded resource-exhaustion attack on
//! a generated multi-flow topology must be flagged by the new cross-flow
//! detector metrics, and the detection envelope built from seed-jittered
//! baselines must never flag its own members (zero false positives by
//! construction).

use snake_core::{
    detect_enveloped, Envelope, Executor, FlowGroup, FlowRole, ProtocolKind, ScenarioSpec,
    TestMetrics, TopologyKind, DEFAULT_THRESHOLD,
};
use snake_proxy::{BasicAttack, Endpoint, Strategy, StrategyKind};
use snake_tcp::Profile;

/// The CLOSE_WAIT exhaustion trigger (paper §VI-A.1): drop the RSTs the
/// aborting clients emit while the tracker still has them in FIN_WAIT_1,
/// wedging one server socket in CLOSE_WAIT per attacked connection.
fn close_wait_strategy() -> Strategy {
    Strategy {
        id: 1,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            state: "FIN_WAIT_1".into(),
            packet_type: "RST".into(),
            attack: BasicAttack::Drop { percent: 100 },
        },
    }
}

/// A star topology with the full flow mix and enough attacked connections
/// for the leak to clear the exhaustion margin decisively.
fn exhaustion_spec() -> ScenarioSpec {
    ScenarioSpec::builder(ProtocolKind::Tcp(Profile::linux_3_0_0()))
        .quick()
        .topology(TopologyKind::Star, 16)
        .flows(vec![
            FlowGroup {
                role: FlowRole::Attacked,
                count: 24,
            },
            FlowGroup {
                role: FlowRole::Bulk,
                count: 2,
            },
            FlowGroup {
                role: FlowRole::SynPressure,
                count: 4,
            },
        ])
        .build()
        .expect("valid exhaustion scenario")
}

fn ensemble(spec: &ScenarioSpec) -> Vec<TestMetrics> {
    (0..3u64)
        .map(|k| {
            let seed = spec.seed() ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Executor::run(&spec.clone().with_seed(seed), None)
        })
        .collect()
}

#[test]
fn seeded_exhaustion_attack_is_flagged_with_zero_envelope_false_positives() {
    let spec = exhaustion_spec();
    let members = ensemble(&spec);
    let envelope = Envelope::from_members(&members, DEFAULT_THRESHOLD);

    // Zero false positives by construction: the envelope is widened to
    // contain every member, so each member's own verdict is clean.
    for (k, member) in members.iter().enumerate() {
        let verdict = detect_enveloped(&envelope, member);
        assert!(
            !verdict.flagged(),
            "member {k} flagged its own envelope: {:?}",
            verdict.labels()
        );
    }

    // The attack wedges one server socket per attacked connection; the
    // socket-table exhaustion edge must catch it.
    let attacked = Executor::run(&spec, Some(close_wait_strategy()));
    assert!(
        attacked.leaked_total > members[0].leaked_total,
        "attack leaked nothing: {} vs baseline {}",
        attacked.leaked_total,
        members[0].leaked_total
    );
    let verdict = detect_enveloped(&envelope, &attacked);
    assert!(
        verdict.table_exhaustion,
        "exhaustion attack not flagged: leaked_total={} labels={:?}",
        attacked.leaked_total,
        verdict.labels()
    );
    assert!(verdict.flagged());
}

#[test]
fn clean_reruns_never_flag_cross_flow_metrics() {
    // A fresh seed inside the jitter neighbourhood — not one of the
    // envelope members — still must not trip any cross-flow edge.
    let spec = exhaustion_spec();
    let envelope = Envelope::from_members(&ensemble(&spec), DEFAULT_THRESHOLD);
    let probe = Executor::run(&spec.clone().with_seed(spec.seed() ^ 0xABCD), None);
    let verdict = detect_enveloped(&envelope, &probe);
    assert!(
        !verdict.fairness_collapse && !verdict.flow_starvation && !verdict.table_exhaustion,
        "clean rerun tripped a cross-flow edge: {:?}",
        verdict.labels()
    );
}
