//! Determinism guarantees: identical (scenario, strategy, seed) inputs
//! produce identical outcomes. The campaign's repeatability re-test and
//! the exactness of the baseline comparison both rest on this.

use snake_core::{Executor, ProtocolKind, ScenarioSpec};
use snake_dccp::DccpProfile;
use snake_packet::FieldMutation;
use snake_proxy::{
    BasicAttack, Endpoint, InjectDirection, InjectionAttack, Strategy, StrategyKind,
};
use snake_tcp::Profile;

fn tcp_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_0_0())).with_seed(seed)
}

#[test]
fn baseline_is_bit_for_bit_reproducible() {
    let a = Executor::run(&tcp_spec(42), None);
    let b = Executor::run(&tcp_spec(42), None);
    assert_eq!(a, b);
}

#[test]
fn attack_runs_are_reproducible_including_probabilistic_attacks() {
    // Drop 50% uses the proxy RNG; the seed pins it.
    let strategy = Strategy {
        id: 9,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Server,
            state: "ESTABLISHED".into(),
            packet_type: "DATA".into(),
            attack: BasicAttack::Drop { percent: 50 },
        },
    };
    let a = Executor::run(&tcp_spec(42), Some(strategy.clone()));
    let b = Executor::run(&tcp_spec(42), Some(strategy));
    assert_eq!(a, b);
    assert!(a.proxy.dropped > 0, "the probabilistic attack did act");
}

#[test]
fn random_field_mutations_are_reproducible() {
    let strategy = Strategy {
        id: 10,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            state: "ESTABLISHED".into(),
            packet_type: "ACK".into(),
            attack: BasicAttack::Lie {
                field: "ack".into(),
                mutation: FieldMutation::Random,
            },
        },
    };
    let a = Executor::run(&tcp_spec(7), Some(strategy.clone()));
    let b = Executor::run(&tcp_spec(7), Some(strategy));
    assert_eq!(a, b);
}

#[test]
fn injection_attacks_are_reproducible() {
    let strategy = Strategy {
        id: 11,
        kind: StrategyKind::OnState {
            endpoint: Endpoint::Client,
            state: "ESTABLISHED".into(),
            attack: InjectionAttack::HitSeqWindow {
                packet_type: "RST".into(),
                direction: InjectDirection::ToClient,
                stride: 65_535,
                count: 10_000,
                rate_pps: 20_000,
                inert: false,
            },
        },
    };
    let a = Executor::run(&tcp_spec(5), Some(strategy.clone()));
    let b = Executor::run(&tcp_spec(5), Some(strategy));
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ_in_detail_but_not_in_verdict_shape() {
    let a = Executor::run(&tcp_spec(1), None);
    let b = Executor::run(&tcp_spec(2), None);
    // Different event interleavings...
    assert_ne!(a.target_bytes, b.target_bytes);
    // ...same qualitative picture (the repeatability re-test depends on
    // this being stable across seeds).
    assert_eq!(a.leaked_sockets, 0);
    assert_eq!(b.leaked_sockets, 0);
    let ratio = a.target_bytes as f64 / b.target_bytes as f64;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "seed noise exceeds the detection threshold: {ratio}"
    );
}

#[test]
fn dccp_runs_are_reproducible() {
    let spec = ScenarioSpec::quick(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    let a = Executor::run(&spec, None);
    let b = Executor::run(&spec, None);
    assert_eq!(a, b);
}
