//! Snapshot-fork equivalence: executing a strategy by forking a baseline
//! snapshot must be indistinguishable — bit for bit, including the proxy
//! report and the simulator event count — from executing it from scratch.
//! This is the correctness contract of `PlannedExecutor`; the campaign
//! turns it on by default, so any divergence here would silently change
//! campaign results.

use snake_core::{
    generate_strategies, Executor, ExecutorOptions, GenerationParams, PlannedExecutor,
    ProtocolKind, ScenarioSpec,
};
use snake_dccp::DccpProfile;
use snake_netsim::Impairment;
use snake_proxy::{BasicAttack, Endpoint, Strategy, StrategyKind};
use snake_tcp::Profile;

/// Every implementation profile the repo ships.
fn all_protocols() -> Vec<ProtocolKind> {
    let mut out: Vec<ProtocolKind> = Profile::all().into_iter().map(ProtocolKind::Tcp).collect();
    out.push(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    out.push(ProtocolKind::Dccp(DccpProfile::linux_3_13_seqcheck_fixed()));
    out
}

/// A small, deterministic, kind-diverse sample of generated strategies:
/// the first strategy of each `StrategyKind` variant plus an even stride
/// over the rest, so every dispatch path (fork, from-scratch, elide) gets
/// exercised without running the full generated set.
fn sample_strategies(
    spec: &ScenarioSpec,
    baseline_proxy: &snake_proxy::ProxyReport,
    take: usize,
) -> Vec<Strategy> {
    let mut next_id = 0;
    let mut seen = std::collections::BTreeSet::new();
    let generated = generate_strategies(
        spec.protocol(),
        &[baseline_proxy],
        &GenerationParams::default(),
        &mut next_id,
        &mut seen,
    );
    assert!(!generated.is_empty(), "generator produced no strategies");
    let mut sample: Vec<Strategy> = Vec::new();
    for variant in 0..4 {
        let found = generated.iter().find(|s| {
            matches!(
                (&s.kind, variant),
                (StrategyKind::OnPacket { .. }, 0)
                    | (StrategyKind::OnState { .. }, 1)
                    | (StrategyKind::AtTime { .. }, 2)
                    | (StrategyKind::OnNthPacket { .. }, 3)
            )
        });
        if let Some(s) = found {
            sample.push(s.clone());
        }
    }
    let stride = (generated.len() / take.max(1)).max(1);
    for s in generated.iter().step_by(stride).take(take) {
        if !sample.iter().any(|have| have.id == s.id) {
            sample.push(s.clone());
        }
    }
    sample
}

#[test]
fn forked_runs_match_from_scratch_on_every_profile() {
    for protocol in all_protocols() {
        let spec = ScenarioSpec::quick(protocol);
        let name = spec.protocol().implementation_name();
        let exec = PlannedExecutor::new(&spec, ExecutorOptions::default());
        assert!(
            exec.snapshot_count() > 0,
            "{name}: baseline saw state transitions, so the plan must hold snapshots"
        );
        assert_eq!(
            *exec.baseline(),
            Executor::run(&spec, None),
            "{name}: planned baseline differs from a plain baseline run"
        );
        for strategy in sample_strategies(&spec, &exec.baseline().proxy, 5) {
            let label = strategy.describe();
            let forked = exec.run(Some(strategy.clone()));
            let scratch = Executor::run(&spec, Some(strategy));
            assert_eq!(
                forked, scratch,
                "{name}: fork/scratch divergence for `{label}`"
            );
        }
    }
}

#[test]
fn forked_runs_match_from_scratch_under_impairments() {
    // Impairment draws come from per-channel RNG lanes inside the
    // simulator, so they are part of the snapshot state: a run forked from
    // a baseline snapshot must replay the exact same loss/reorder/flap
    // draws a from-scratch run makes.
    for preset in ["lossy", "jittery", "flappy"] {
        let impair = Impairment::preset(preset).expect("built-in preset");
        for protocol in [
            ProtocolKind::Tcp(Profile::linux_3_13()),
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
        ] {
            let spec = ScenarioSpec::quick(protocol).with_impairment(impair);
            let name = spec.protocol().implementation_name().to_owned();
            let exec = PlannedExecutor::new(&spec, ExecutorOptions::default());
            assert_eq!(
                *exec.baseline(),
                Executor::run(&spec, None),
                "{name}/{preset}: planned baseline differs from a plain baseline run"
            );
            for strategy in sample_strategies(&spec, &exec.baseline().proxy, 3) {
                let label = strategy.describe();
                let forked = exec.run(Some(strategy.clone()));
                let scratch = Executor::run(&spec, Some(strategy));
                assert_eq!(
                    forked, scratch,
                    "{name}/{preset}: fork/scratch divergence for `{label}`"
                );
            }
        }
    }
}

#[test]
fn forked_runs_match_from_scratch_on_a_multiflow_profile() {
    // The snapshot planner must hold on a generated topology carrying the
    // full four-role flow mix: per-flow byte counts and the server-wide
    // socket census are part of TestMetrics, so any fork/scratch
    // divergence in any flow is caught bit for bit.
    use snake_core::{FlowGroup, FlowRole, TopologyKind};
    let flows = vec![
        FlowGroup {
            role: FlowRole::Attacked,
            count: 2,
        },
        FlowGroup {
            role: FlowRole::Bulk,
            count: 2,
        },
        FlowGroup {
            role: FlowRole::RequestResponse,
            count: 2,
        },
        FlowGroup {
            role: FlowRole::SynPressure,
            count: 2,
        },
    ];
    for protocol in [
        ProtocolKind::Tcp(Profile::linux_3_13()),
        ProtocolKind::Dccp(DccpProfile::linux_3_13()),
    ] {
        let spec = ScenarioSpec::builder(protocol)
            .data_secs(4)
            .grace_secs(10)
            .topology(TopologyKind::Star, 16)
            .flows(flows.clone())
            .build()
            .expect("valid multi-flow profile");
        let name = spec.protocol().implementation_name().to_owned();
        let exec = PlannedExecutor::new(&spec, ExecutorOptions::default());
        assert_eq!(
            *exec.baseline(),
            Executor::run(&spec, None),
            "{name}: planned multi-flow baseline differs from a plain run"
        );
        assert!(
            exec.baseline().flow_bytes.len() > 2,
            "{name}: multi-flow metrics missing"
        );
        for strategy in sample_strategies(&spec, &exec.baseline().proxy, 4) {
            let label = strategy.describe();
            let forked = exec.run(Some(strategy.clone()));
            let scratch = Executor::run(&spec, Some(strategy));
            assert_eq!(
                forked, scratch,
                "{name}: multi-flow fork/scratch divergence for `{label}`"
            );
        }
    }
}

#[test]
fn forked_combination_runs_match_from_scratch() {
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    let exec = PlannedExecutor::new(&spec, ExecutorOptions::default());
    let sample = sample_strategies(&spec, &exec.baseline().proxy, 6);
    // Pair strategies up so the fork point is the min of two trigger times.
    for pair in sample.chunks(2) {
        let rules: Vec<Strategy> = pair.to_vec();
        let labels: Vec<String> = rules.iter().map(|s| s.describe()).collect();
        let forked = exec.run_combination(rules.clone());
        let scratch = Executor::run_combination(&spec, rules);
        assert_eq!(forked, scratch, "combination divergence for {labels:?}");
    }
}

#[test]
fn never_triggering_strategy_is_elided_to_the_baseline() {
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    let exec = PlannedExecutor::new(&spec, ExecutorOptions::default());
    // A TCP client never receives a SYN in the baseline dumbbell, so this
    // rule's trigger key is absent from the timeline: the planner answers
    // with the baseline metrics without running anything.
    let strategy = Strategy {
        id: 7777,
        kind: StrategyKind::OnPacket {
            endpoint: Endpoint::Client,
            state: "ESTABLISHED".into(),
            packet_type: "SYN".into(),
            attack: BasicAttack::Drop { percent: 100 },
        },
    };
    let elided = exec.run(Some(strategy.clone()));
    assert_eq!(elided, *exec.baseline());
    // ... and that answer is exactly what a real run would have produced.
    assert_eq!(elided, Executor::run(&spec, Some(strategy)));
}

#[test]
fn disabled_planner_still_matches() {
    // snapshot_fork=false must be a pure pass-through to the old executor.
    let spec = ScenarioSpec::quick(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    let exec = PlannedExecutor::new(
        &spec,
        ExecutorOptions {
            snapshot_fork: false,
            ..ExecutorOptions::default()
        },
    );
    assert_eq!(exec.snapshot_count(), 0);
    let strategy = sample_strategies(&spec, &exec.baseline().proxy, 1)
        .into_iter()
        .next()
        .expect("at least one strategy");
    assert_eq!(
        exec.run(Some(strategy.clone())),
        Executor::run(&spec, Some(strategy))
    );
}
