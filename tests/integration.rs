//! Cross-crate integration tests: the full SNAKE pipeline — scenario
//! execution, strategy generation, campaign bookkeeping, and report
//! rendering — exercised end to end on reduced configurations.

use snake_core::{
    detect, generate_strategies, render_table1, render_table2, Campaign, CampaignConfig, Executor,
    GenerationParams, ProtocolKind, ScenarioSpec, DEFAULT_THRESHOLD,
};
use snake_dccp::DccpProfile;
use snake_proxy::StrategyKind;
use snake_tcp::Profile;

fn quick_tcp() -> ScenarioSpec {
    ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()))
}

#[test]
fn baseline_runs_are_clean_for_every_implementation() {
    let mut protocols = vec![ProtocolKind::Dccp(DccpProfile::linux_3_13())];
    protocols.extend(Profile::all().into_iter().map(ProtocolKind::Tcp));
    for protocol in protocols {
        let name = protocol.implementation_name().to_owned();
        let spec = ScenarioSpec::quick(protocol);
        let m = Executor::run(&spec, None);
        assert!(
            m.target_bytes > 500_000,
            "{name}: target starved: {}",
            m.target_bytes
        );
        assert!(m.competing_bytes > 500_000, "{name}: competing starved");
        assert_eq!(m.leaked_sockets, 0, "{name}: baseline leak");
        let v = detect(&m, &m.clone(), DEFAULT_THRESHOLD);
        assert!(!v.flagged(), "{name}: baseline flags itself");
    }
}

#[test]
fn strategy_generation_covers_both_protocols() {
    // Generate from a real baseline report for each protocol and sanity
    // check composition.
    for protocol in [
        ProtocolKind::Tcp(Profile::linux_3_13()),
        ProtocolKind::Dccp(DccpProfile::linux_3_13()),
    ] {
        let spec = ScenarioSpec::quick(protocol.clone());
        let baseline = Executor::run(&spec, None);
        let mut next_id = 0;
        let mut seen = std::collections::BTreeSet::new();
        let strategies = generate_strategies(
            &protocol,
            &[&baseline.proxy],
            &GenerationParams::default(),
            &mut next_id,
            &mut seen,
        );
        assert!(
            strategies.len() > 300,
            "{}: only {} strategies",
            protocol.protocol_name(),
            strategies.len()
        );
        let on_packet = strategies
            .iter()
            .filter(|s| matches!(s.kind, StrategyKind::OnPacket { .. }))
            .count();
        let on_state = strategies
            .iter()
            .filter(|s| matches!(s.kind, StrategyKind::OnState { .. }))
            .count();
        assert!(on_packet > 0 && on_state > 0, "both families present");
        // Ids unique.
        let mut ids: Vec<u64> = strategies.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), strategies.len());
    }
}

#[test]
fn campaign_counts_are_consistent() {
    let config = CampaignConfig::builder(quick_tcp())
        .cap(40)
        .feedback_rounds(1)
        .retest(true)
        .build()
        .expect("valid config");
    let result = Campaign::run(config).expect("campaign preconditions hold");
    assert_eq!(result.strategies_tried(), 40);
    let found = result.attack_strategies_found();
    let sum =
        result.on_path_count() + result.false_positive_count() + result.true_attack_strategies();
    assert_eq!(
        found, sum,
        "Table I columns must partition the found strategies"
    );
    assert!(result.true_attacks() <= result.true_attack_strategies().max(1));
}

#[test]
fn tables_render_from_campaign_results() {
    let config = CampaignConfig::builder(quick_tcp())
        .cap(15)
        .feedback_rounds(1)
        .retest(false)
        .build()
        .expect("valid config");
    let result = Campaign::run(config).expect("campaign preconditions hold");
    let t1 = render_table1(std::slice::from_ref(&result));
    assert!(t1.contains("Linux 3.13"));
    assert!(t1.contains("Strategies Tried"));
    let t2 = render_table2(std::slice::from_ref(&result));
    assert!(t2.contains("Attack"));
}

#[test]
fn attack_run_feedback_covers_baseline_space() {
    let config = CampaignConfig::builder(quick_tcp())
        .cap(60)
        .feedback_rounds(1)
        .retest(false)
        .build()
        .expect("valid config");
    let one = Campaign::run(config).expect("campaign preconditions hold");
    assert_eq!(one.strategies_tried(), 60);
    // A fresh generation pass over the executed outcomes' observations
    // finds at least the baseline-visible space again.
    let mut seen = std::collections::BTreeSet::new();
    let mut next_id = 0;
    let reports: Vec<&snake_proxy::ProxyReport> = one
        .outcomes
        .iter()
        .map(|o| o.metrics.proxy.as_ref())
        .collect();
    let regen = generate_strategies(
        &ProtocolKind::Tcp(Profile::linux_3_13()),
        &reports,
        &GenerationParams::default(),
        &mut next_id,
        &mut seen,
    );
    assert!(
        regen.len() >= 60,
        "attack-run feedback covers at least the baseline space: {}",
        regen.len()
    );
}

#[test]
fn search_space_comparison_shape() {
    use snake_core::search::SearchSpaceParams;
    let p = SearchSpaceParams::paper();
    assert!(p.state_based_cost().strategies < p.send_packet_cost().strategies);
    assert!(p.send_packet_cost().strategies < p.time_interval_cost().strategies);
    let rendered = p.render();
    assert!(rendered.contains("SNAKE"));
}

#[test]
fn dccp_campaign_smoke() {
    let spec = ScenarioSpec::quick(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    let config = CampaignConfig::builder(spec)
        .cap(25)
        .feedback_rounds(1)
        .retest(false)
        .build()
        .expect("valid config");
    let result = Campaign::run(config).expect("campaign preconditions hold");
    assert_eq!(result.protocol, "DCCP");
    assert_eq!(result.strategies_tried(), 25);
}
