//! Run-manifest determinism: everything except the `timing` section is
//! derived from the campaign's deterministic outputs, so two same-seed
//! runs must produce byte-identical manifests once `timing` is stripped;
//! the manifest's memo totals must equal the campaign's own counters; and
//! a killed-and-resumed campaign must reproduce the uninterrupted run's
//! memo section exactly.
//!
//! Worker count must NOT matter: outcomes are admitted (memo markers
//! assigned, fingerprint cache updated, journal appended) strictly in
//! strategy-index order through the batch release buffer, so the `fp`
//! provenance markers — and with them the whole manifest — are identical
//! at any parallelism, for fresh and resumed campaigns alike.

use std::path::PathBuf;
use std::sync::Arc;

use snake_core::{
    build_run_manifest, Campaign, CampaignConfig, CampaignResult, ProtocolKind, Recorder,
    RecorderSnapshot, ScenarioSpec,
};
use snake_json::Value;
use snake_tcp::Profile;

fn quick_tcp() -> ScenarioSpec {
    ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()))
}

/// One observed memoized campaign at the given worker count, optionally
/// journaled.
fn observed_campaign_with(
    parallelism: usize,
    journal: Option<(PathBuf, bool)>,
) -> (CampaignResult, RecorderSnapshot) {
    let recorder = Arc::new(Recorder::new());
    let mut builder = CampaignConfig::builder(quick_tcp())
        .cap(40)
        .feedback_rounds(1)
        .retest(false)
        .parallelism(parallelism)
        .memoize(true)
        .observer(recorder.clone());
    if let Some((path, resume)) = journal {
        builder = builder.journal(path).resume(resume);
    }
    let config = builder.build().expect("valid config");
    let result = Campaign::run(config).expect("valid baseline");
    (result, recorder.snapshot())
}

/// One observed single-worker memoized campaign, optionally journaled.
fn observed_campaign(journal: Option<(PathBuf, bool)>) -> (CampaignResult, RecorderSnapshot) {
    observed_campaign_with(1, journal)
}

/// The manifest rendered with its wall-clock-derived `timing` section
/// removed — the part the determinism contract covers.
fn stable_json(result: &CampaignResult, snapshot: &RecorderSnapshot) -> String {
    let manifest = build_run_manifest(result, snapshot, 0.0);
    match manifest.to_json() {
        Value::Obj(pairs) => Value::Obj(pairs.into_iter().filter(|(k, _)| k != "timing").collect())
            .to_string_compact(),
        other => other.to_string_compact(),
    }
}

fn u64_at(value: &Value, key: &str) -> u64 {
    match value.get(key) {
        Some(Value::U64(n)) => *n,
        other => panic!("expected u64 at `{key}`, got {other:?}"),
    }
}

#[test]
fn same_seed_runs_produce_identical_manifests_modulo_timing() {
    let (result_a, snapshot_a) = observed_campaign(None);
    let (result_b, snapshot_b) = observed_campaign(None);
    assert_eq!(
        stable_json(&result_a, &snapshot_a),
        stable_json(&result_b, &snapshot_b),
        "same-seed single-worker manifests must agree outside `timing`"
    );
}

#[test]
fn manifest_memo_totals_equal_campaign_counters() {
    let (result, snapshot) = observed_campaign(None);
    let manifest = build_run_manifest(&result, &snapshot, 0.0);
    let memo = manifest.section("memo").expect("memo section present");
    assert_eq!(u64_at(memo, "memo_hits"), result.memo_hits as u64);
    assert_eq!(u64_at(memo, "short_circuits"), result.short_circuits as u64);
    let breakdown = memo.get("breakdown").expect("breakdown present");
    assert_eq!(
        u64_at(breakdown, "class") + u64_at(breakdown, "fingerprint"),
        result.memo_hits as u64,
        "memo hits are exactly the class + fingerprint outcomes"
    );
    assert_eq!(
        u64_at(breakdown, "inert") + u64_at(breakdown, "halt"),
        result.short_circuits as u64,
        "short-circuits are exactly the inert + halt outcomes"
    );
    assert!(
        result.memo_hits + result.short_circuits > 0,
        "the quick campaign must exercise the memo layers at all"
    );
}

#[test]
fn worker_count_does_not_change_the_manifest() {
    let (result_one, snapshot_one) = observed_campaign_with(1, None);
    let (result_four, snapshot_four) = observed_campaign_with(4, None);
    assert_eq!(
        stable_json(&result_one, &snapshot_one),
        stable_json(&result_four, &snapshot_four),
        "ordered admission must make memo markers — and the whole \
         manifest — identical at any parallelism"
    );
}

#[test]
fn multi_worker_resume_reproduces_the_memo_section() {
    let dir = std::env::temp_dir();
    let journal_a: PathBuf = dir.join(format!(
        "snake-manifest-mw-full-{}.jsonl",
        std::process::id()
    ));
    let journal_b: PathBuf = dir.join(format!(
        "snake-manifest-mw-resumed-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&journal_a).ok();
    std::fs::remove_file(&journal_b).ok();

    let (full, full_snapshot) = observed_campaign_with(3, Some((journal_a.clone(), false)));

    // Simulated kill after nine outcomes, then resume with three workers:
    // the resumed markers must match the uninterrupted run exactly even
    // though admission restarts mid-batch under parallelism.
    let text = std::fs::read_to_string(&journal_a).unwrap();
    let kept: Vec<&str> = text.lines().take(10).collect();
    std::fs::write(&journal_b, kept.join("\n")).unwrap();
    let (resumed, resumed_snapshot) = observed_campaign_with(3, Some((journal_b.clone(), true)));

    assert_eq!(resumed.resumed, 9, "nine journaled outcomes reused");
    let memo_of = |result: &CampaignResult, snapshot: &RecorderSnapshot| {
        build_run_manifest(result, snapshot, 0.0)
            .section("memo")
            .expect("memo section present")
            .to_string_compact()
    };
    assert_eq!(
        memo_of(&resumed, &resumed_snapshot),
        memo_of(&full, &full_snapshot),
        "multi-worker resume must reproduce the per-marker memo breakdown"
    );
    assert_eq!(
        resumed.outcomes.iter().map(|o| &o.memo).collect::<Vec<_>>(),
        full.outcomes.iter().map(|o| &o.memo).collect::<Vec<_>>(),
        "every individual provenance marker must survive a multi-worker resume"
    );

    std::fs::remove_file(&journal_a).ok();
    std::fs::remove_file(&journal_b).ok();
}

#[test]
fn resumed_campaign_reproduces_the_memo_section() {
    let dir = std::env::temp_dir();
    let journal_a: PathBuf = dir.join(format!("snake-manifest-full-{}.jsonl", std::process::id()));
    let journal_b: PathBuf = dir.join(format!(
        "snake-manifest-resumed-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&journal_a).ok();
    std::fs::remove_file(&journal_b).ok();

    let (full, full_snapshot) = observed_campaign(Some((journal_a.clone(), false)));

    // Simulated kill after twelve outcomes (header + 12 lines), then
    // resume from the truncated journal.
    let text = std::fs::read_to_string(&journal_a).unwrap();
    let kept: Vec<&str> = text.lines().take(13).collect();
    std::fs::write(&journal_b, kept.join("\n")).unwrap();
    let (resumed, resumed_snapshot) = observed_campaign(Some((journal_b.clone(), true)));

    assert_eq!(resumed.resumed, 12, "twelve journaled outcomes reused");
    assert_eq!(
        resumed.memo_hits, full.memo_hits,
        "resume must reproduce the memo-hit total"
    );
    assert_eq!(
        resumed.short_circuits, full.short_circuits,
        "resume must reproduce the short-circuit total"
    );
    let memo_of = |result: &CampaignResult, snapshot: &RecorderSnapshot| {
        build_run_manifest(result, snapshot, 0.0)
            .section("memo")
            .expect("memo section present")
            .to_string_compact()
    };
    assert_eq!(
        memo_of(&resumed, &resumed_snapshot),
        memo_of(&full, &full_snapshot),
        "resume must reproduce the per-marker memo breakdown"
    );

    std::fs::remove_file(&journal_a).ok();
    std::fs::remove_file(&journal_b).ok();
}
