//! Memoization equivalence: campaigns with memoization on must produce
//! outcomes bit-identical to campaigns with memoization off, on every
//! shipped implementation profile. Memoization (inert-strategy elision,
//! `OnState` class sharing, fingerprint verdict caching, the proxy's no-op
//! halt) is a throughput knob, never a results knob — the same contract the
//! snapshot-fork planner already honours.

use std::path::PathBuf;

use snake_core::{
    generate_strategies, journal, Campaign, CampaignConfig, CampaignResult, Executor,
    ExecutorOptions, GenerationParams, PlannedExecutor, ProtocolKind, ScenarioSpec,
    StrategyOutcome,
};
use snake_dccp::DccpProfile;
use snake_netsim::Impairment;
use snake_packet::FieldMutation;
use snake_proxy::{BasicAttack, Endpoint, Strategy, StrategyKind};
use snake_tcp::Profile;

/// Every implementation profile the repo ships.
fn all_protocols() -> Vec<ProtocolKind> {
    let mut out: Vec<ProtocolKind> = Profile::all().into_iter().map(ProtocolKind::Tcp).collect();
    out.push(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    out.push(ProtocolKind::Dccp(DccpProfile::linux_3_13_seqcheck_fixed()));
    out
}

/// Everything an outcome carries except the `memo` provenance marker,
/// which legitimately differs between memoized and unmemoized campaigns
/// (it records *how* the outcome was obtained, not *what* it is).
fn comparable(outcomes: &[StrategyOutcome]) -> Vec<StrategyOutcome> {
    outcomes
        .iter()
        .map(|o| StrategyOutcome {
            memo: None,
            ..o.clone()
        })
        .collect()
}

fn campaign(spec: ScenarioSpec, cap: usize, memoize: bool) -> CampaignResult {
    let config = CampaignConfig::builder(spec)
        .cap(cap)
        .feedback_rounds(1)
        .retest(false)
        .parallelism(2)
        .memoize(memoize)
        .build()
        .expect("valid config");
    Campaign::run(config).expect("valid baseline")
}

#[test]
fn memoized_campaigns_match_unmemoized_on_every_profile() {
    for protocol in all_protocols() {
        let spec = ScenarioSpec::quick(protocol);
        let name = spec.protocol().implementation_name().to_owned();
        let with_memo = campaign(spec.clone(), 36, true);
        let without = campaign(spec, 36, false);
        assert_eq!(
            comparable(&with_memo.outcomes),
            comparable(&without.outcomes),
            "{name}: memoization changed campaign outcomes"
        );
        assert_eq!(without.memo_hits, 0);
        assert_eq!(without.short_circuits, 0);
    }
}

#[test]
fn memoized_campaigns_match_unmemoized_under_impairments() {
    // Memoization keys on wire fingerprints and trigger classes; impaired
    // links add loss and reorder noise to both. The equivalence contract
    // must hold anyway: the same noise is deterministic per seed, so a
    // memoized impaired campaign and an unmemoized one still agree bit
    // for bit.
    for preset in ["lossy", "flappy"] {
        let impair = Impairment::preset(preset).expect("built-in preset");
        for protocol in [
            ProtocolKind::Tcp(Profile::linux_3_13()),
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
        ] {
            let spec = ScenarioSpec::quick(protocol).with_impairment(impair);
            let name = spec.protocol().implementation_name().to_owned();
            let with_memo = campaign(spec.clone(), 24, true);
            let without = campaign(spec, 24, false);
            assert_eq!(
                comparable(&with_memo.outcomes),
                comparable(&without.outcomes),
                "{name}/{preset}: memoization changed impaired campaign outcomes"
            );
        }
    }
}

#[test]
fn memoization_is_transparent_under_retesting() {
    // With re-testing on, class sharing must also cover the re-test seed's
    // runs (the composite class key), and flagged verdicts must never be
    // served from the fingerprint cache.
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    let config = |memoize| {
        CampaignConfig::builder(spec.clone())
            .cap(60)
            .feedback_rounds(1)
            .retest(true)
            .parallelism(2)
            .memoize(memoize)
            .build()
            .expect("valid config")
    };
    let with_memo = Campaign::run(config(true)).expect("valid baseline");
    let without = Campaign::run(config(false)).expect("valid baseline");
    assert_eq!(
        comparable(&with_memo.outcomes),
        comparable(&without.outcomes)
    );
}

#[test]
fn memoized_tcp_campaign_reports_hits() {
    // The 200-strategy quick TCP campaign (the benchmark's shape, with the
    // benchmark's reduced basic-attack parameter lists) must actually
    // exercise both memoization layers: flag-field lies that are provably
    // inert against the baseline, and trigger-equivalent OnState
    // injections sharing one representative run.
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    let config = CampaignConfig::builder(spec)
        .cap(200)
        .feedback_rounds(2)
        .retest(false)
        .parallelism(2)
        .memoize(true)
        .params(GenerationParams {
            drop_percents: vec![100],
            duplicate_copies: vec![2],
            delay_secs: vec![1.0],
            batch_secs: vec![4.0],
            ..GenerationParams::default()
        })
        .build()
        .expect("valid config");
    let result = Campaign::run(config).expect("valid baseline");
    assert_eq!(result.strategies_tried(), 200);
    assert!(
        result.short_circuits > 0,
        "no strategy was short-circuited as provably inert"
    );
    assert!(
        result.memo_hits > 0,
        "no outcome was shared via memoization"
    );
    let marked = result.outcomes.iter().filter(|o| o.memo.is_some()).count();
    assert!(
        marked > 0,
        "memoized outcomes must carry provenance markers"
    );
}

#[test]
fn provably_inert_strategies_really_are_inert() {
    // Whatever the static analysis claims is a wire no-op must, when
    // actually executed from scratch, reproduce the baseline bit for bit.
    for protocol in [
        ProtocolKind::Tcp(Profile::linux_3_13()),
        ProtocolKind::Dccp(DccpProfile::linux_3_13()),
    ] {
        let spec = ScenarioSpec::quick(protocol);
        let name = spec.protocol().implementation_name().to_owned();
        let exec = PlannedExecutor::new(
            &spec,
            ExecutorOptions {
                memoize: true,
                ..ExecutorOptions::default()
            },
        );
        assert!(exec.plan_active(), "{name}: determinism guard failed");
        let mut next_id = 0;
        let mut seen = std::collections::BTreeSet::new();
        let generated = generate_strategies(
            spec.protocol(),
            &[&exec.baseline().proxy],
            &GenerationParams::default(),
            &mut next_id,
            &mut seen,
        );
        let inert: Vec<&Strategy> = generated
            .iter()
            .filter(|s| exec.provably_inert(s))
            .collect();
        assert!(
            !inert.is_empty(),
            "{name}: generator produced no provably inert strategy"
        );
        // Executing a few of them for real must land exactly on the
        // baseline (checking all of them would re-run most of the grid).
        for s in inert.iter().take(4) {
            let label = s.describe();
            assert_eq!(
                Executor::run(&spec, Some((*s).clone())),
                *exec.baseline(),
                "{name}: `{label}` was declared inert but changed the run"
            );
        }
    }
}

#[test]
fn noop_halt_matches_full_runs() {
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    let exec = PlannedExecutor::new(
        &spec,
        ExecutorOptions {
            memoize: true,
            ..ExecutorOptions::default()
        },
    );
    assert!(exec.plan_active());
    let nth_lie = |id, n, field: &str, mutation| Strategy {
        id,
        kind: StrategyKind::OnNthPacket {
            endpoint: Endpoint::Client,
            n,
            attack: BasicAttack::Lie {
                field: field.into(),
                mutation,
            },
        },
    };

    // A runtime no-op lie: the proxy notices the rule was spent without a
    // wire effect, halts the run, and substitutes the baseline — which is
    // exactly what the full from-scratch run produces.
    let inert = nth_lie(1, 3, "seq", FieldMutation::Add(0));
    let halted = exec.run(Some(inert.clone()));
    assert_eq!(halted, Executor::run(&spec, Some(inert)));
    assert_eq!(halted, *exec.baseline());
    assert_eq!(exec.short_circuits(), 1, "the run must have been halted");

    // A lie that does change bytes must run to completion and agree with
    // the from-scratch executor; the halt must not fire.
    let live = nth_lie(2, 2, "ack", FieldMutation::Add(1));
    assert_eq!(
        exec.run(Some(live.clone())),
        Executor::run(&spec, Some(live))
    );
    assert_eq!(exec.short_circuits(), 1, "a live lie must not be halted");

    // With memoization off the same inert lie takes the ordinary path.
    let plain = PlannedExecutor::new(&spec, ExecutorOptions::default());
    let inert = nth_lie(3, 3, "seq", FieldMutation::Add(0));
    assert_eq!(plain.run(Some(inert)), *plain.baseline());
    assert_eq!(plain.short_circuits(), 0);
}

#[test]
fn killed_memoized_campaign_resumes_identically() {
    let dir = std::env::temp_dir();
    let journal_a: PathBuf = dir.join(format!("snake-memo-full-{}.jsonl", std::process::id()));
    let journal_b: PathBuf = dir.join(format!("snake-memo-resumed-{}.jsonl", std::process::id()));
    std::fs::remove_file(&journal_a).ok();
    std::fs::remove_file(&journal_b).ok();
    let config = |journal: PathBuf, resume: bool| {
        CampaignConfig::builder(ScenarioSpec::quick(
            ProtocolKind::Tcp(Profile::linux_3_13()),
        ))
        .cap(40)
        .feedback_rounds(1)
        .retest(false)
        .parallelism(1)
        .memoize(true)
        .journal(journal)
        .resume(resume)
        .build()
        .expect("valid config")
    };

    // Reference: an uninterrupted memoized run.
    let full = Campaign::run(config(journal_a.clone(), false)).unwrap();
    let journaled_memos = journal::load(&journal_a)
        .unwrap()
        .outcomes
        .iter()
        .filter(|o| o.memo.is_some())
        .count();
    assert!(
        journaled_memos > 0,
        "memoized outcomes must be recorded in the journal"
    );

    // Simulated kill after twelve outcomes, then resume.
    let text = std::fs::read_to_string(&journal_a).unwrap();
    let kept: Vec<&str> = text.lines().take(13).collect();
    std::fs::write(&journal_b, kept.join("\n")).unwrap();
    let resumed = Campaign::run(config(journal_b.clone(), true)).unwrap();
    assert_eq!(resumed.resumed, 12);
    assert_eq!(
        comparable(&resumed.outcomes),
        comparable(&full.outcomes),
        "resume of a memoized campaign must reproduce the outcomes"
    );

    // Resuming the completed journal reuses everything, memoized outcomes
    // included — they replay exactly as recorded.
    let again = Campaign::run(config(journal_b.clone(), true)).unwrap();
    assert_eq!(again.resumed, 40);
    assert_eq!(again.outcomes, resumed.outcomes);

    std::fs::remove_file(&journal_a).ok();
    std::fs::remove_file(&journal_b).ok();
}
