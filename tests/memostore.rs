//! Persistent memo store: the on-disk fingerprint→verdict cache must be
//! invisible to campaign outcomes (store on/off and cold/warm runs are
//! bit-identical, provenance markers included), deliver real cross-run
//! hits on a warm rerun, and shrug off every kind of file damage — torn
//! final records, bit flips, wrong-version headers, and interleaved
//! concurrent writers — by skipping or discarding, never by trusting a
//! damaged entry.

use std::path::PathBuf;

use snake_core::{
    Campaign, CampaignConfig, CampaignResult, MemoStoreReport, ProtocolKind, ScenarioSpec,
};
use snake_dccp::DccpProfile;
use snake_tcp::Profile;

/// Every implementation profile the repo ships.
fn all_protocols() -> Vec<ProtocolKind> {
    let mut out: Vec<ProtocolKind> = Profile::all().into_iter().map(ProtocolKind::Tcp).collect();
    out.push(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    out.push(ProtocolKind::Dccp(DccpProfile::linux_3_13_seqcheck_fixed()));
    out
}

fn temp_store(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "snake-memostore-{}-{name}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&p).ok();
    p
}

fn campaign(spec: ScenarioSpec, cap: usize, store: Option<PathBuf>) -> CampaignResult {
    let mut builder = CampaignConfig::builder(spec)
        .cap(cap)
        .feedback_rounds(1)
        .retest(false)
        .parallelism(2)
        .memoize(true);
    if let Some(path) = store {
        builder = builder.memo_store(path);
    }
    Campaign::run(builder.build().expect("valid config")).expect("valid baseline")
}

fn quick_tcp() -> ScenarioSpec {
    ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()))
}

fn report(result: &CampaignResult) -> MemoStoreReport {
    result.memo_store.expect("store was configured and active")
}

/// The store file's line framing, hand-rolled: the framing helpers are
/// crate-private on purpose, and forging lines independently is exactly
/// what an adversarial test should do anyway.
fn fnv1a(payload: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in payload.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn checksummed(payload: &str) -> String {
    format!("{payload}\t{:016x}\n", fnv1a(payload))
}

#[test]
fn store_is_invisible_to_outcomes_on_every_profile() {
    // Three runs per profile: without a store, with a cold store, and with
    // the now-warm store. All three must agree bit for bit — markers
    // included — because store-loaded verdicts feed counters, never
    // outcomes.
    for protocol in all_protocols() {
        let spec = ScenarioSpec::quick(protocol);
        let name = spec.protocol().implementation_name().to_owned();
        let path = temp_store(&format!(
            "profiles-{}",
            name.replace(|c: char| !c.is_ascii_alphanumeric(), "-")
        ));
        let bare = campaign(spec.clone(), 24, None);
        let cold = campaign(spec.clone(), 24, Some(path.clone()));
        let warm = campaign(spec, 24, Some(path.clone()));
        assert_eq!(
            bare.outcomes, cold.outcomes,
            "{name}: the store changed outcomes against a store-less run"
        );
        assert_eq!(
            cold.outcomes, warm.outcomes,
            "{name}: a warm store changed outcomes against the cold run"
        );
        assert!(bare.memo_store.is_none(), "{name}: no store was configured");
        assert_eq!(report(&cold).cross_run_hits, 0, "{name}: cold store");
        assert!(
            report(&warm).cross_run_hits > 0,
            "{name}: the warm rerun must actually hit the store"
        );
        assert_eq!(report(&warm).verdict_mismatches, 0, "{name}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn warm_rerun_hits_at_least_half_of_eligible_runs() {
    let path = temp_store("warm-hit-rate");
    let cold = campaign(quick_tcp(), 40, Some(path.clone()));
    let cold_report = report(&cold);
    assert!(cold_report.appended > 0, "cold run must populate the store");
    assert_eq!(cold_report.cross_run_hits, 0);

    let warm = campaign(quick_tcp(), 40, Some(path.clone()));
    let warm_report = report(&warm);
    assert_eq!(
        warm.outcomes, cold.outcomes,
        "warm rerun must be bit-identical to the cold run"
    );
    assert!(
        warm_report.hit_rate() >= 0.5,
        "warm rerun must serve at least half its eligible runs from the \
         store: {warm_report:?}"
    );
    assert_eq!(
        warm_report.appended, 0,
        "an identical rerun has nothing new to append: {warm_report:?}"
    );
    assert_eq!(warm_report.verdict_mismatches, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_final_record_is_skipped_not_trusted() {
    let path = temp_store("torn-tail");
    let cold = campaign(quick_tcp(), 24, Some(path.clone()));
    assert!(
        report(&cold).appended > 0,
        "cold run must populate the store"
    );

    // A writer killed mid-append leaves a torn final line. Cut the last
    // record in half (no trailing newline either).
    let text = std::fs::read_to_string(&path).unwrap();
    let last = text.lines().last().unwrap();
    let torn = &text[..text.len() - 1 - last.len() / 2];
    assert!(!torn.ends_with('\n'));
    std::fs::write(&path, torn).unwrap();

    let warm = campaign(quick_tcp(), 24, Some(path.clone()));
    let warm_report = report(&warm);
    assert_eq!(warm.outcomes, cold.outcomes);
    assert!(
        warm_report.entries_skipped >= 1,
        "the torn record must be rejected: {warm_report:?}"
    );
    assert_eq!(
        warm_report.appended, 1,
        "the lost entry is re-learned and re-appended: {warm_report:?}"
    );
    // The re-append must not have glued onto the torn fragment: a third
    // run loads a fully healthy store.
    let third = campaign(quick_tcp(), 24, Some(path.clone()));
    let third_report = report(&third);
    assert_eq!(third_report.entries_skipped, 1, "{third_report:?}");
    assert_eq!(third_report.appended, 0, "{third_report:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flipped_record_fails_its_checksum_and_is_skipped() {
    let path = temp_store("bit-flip");
    let cold = campaign(quick_tcp(), 24, Some(path.clone()));

    // Flip one payload byte of the second line (the first entry after the
    // header), keeping the stored checksum. The length-preserving damage
    // can only be caught by the checksum itself.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    assert!(lines.len() >= 2, "cold run must have appended entries");
    let mut damaged = lines[1].clone().into_bytes();
    let flip = damaged.iter().position(|b| *b == b':').unwrap();
    damaged[flip - 1] ^= 0x01; // an ASCII payload byte: still valid UTF-8
    lines[1] = String::from_utf8(damaged).unwrap();
    let rewritten: String = lines.iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, rewritten).unwrap();

    let warm = campaign(quick_tcp(), 24, Some(path.clone()));
    let warm_report = report(&warm);
    assert_eq!(warm.outcomes, cold.outcomes);
    assert_eq!(
        warm_report.entries_skipped, 1,
        "the flipped record must fail verification: {warm_report:?}"
    );
    assert_eq!(
        warm_report.entries_loaded + warm_report.entries_skipped,
        report(&cold).appended,
        "every cold-run entry is accounted for, loaded or skipped: {warm_report:?}"
    );
    assert_eq!(
        warm_report.appended, 1,
        "the damaged entry is re-learned and re-appended: {warm_report:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_version_header_discards_the_store_wholesale() {
    let path = temp_store("wrong-version");
    let cold = campaign(quick_tcp(), 24, Some(path.clone()));
    let appended = report(&cold).appended;
    assert!(appended > 0);

    // Rewrite the header as a *correctly checksummed* future version: the
    // loader must reject on the version field, not the framing.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    lines[0] = checksummed("{\"type\":\"memostore\",\"version\":2}")
        .trim_end()
        .to_owned();
    let rewritten: String = lines.iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, rewritten).unwrap();

    let warm = campaign(quick_tcp(), 24, Some(path.clone()));
    let warm_report = report(&warm);
    assert_eq!(warm.outcomes, cold.outcomes);
    assert_eq!(
        warm_report.entries_loaded, 0,
        "no future-format entry may be reinterpreted: {warm_report:?}"
    );
    assert_eq!(
        warm_report.entries_skipped, appended,
        "every entry under the wrong-version header is rejected: {warm_report:?}"
    );
    assert_eq!(warm_report.cross_run_hits, 0, "{warm_report:?}");
    assert_eq!(
        warm_report.appended, appended,
        "the recreated store is repopulated from scratch: {warm_report:?}"
    );
    // The recreated store carries the current version and works again.
    let third = campaign(quick_tcp(), 24, Some(path.clone()));
    assert!(report(&third).cross_run_hits > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_writer_interleavings_are_tolerated() {
    let path = temp_store("interleave");
    let cold = campaign(quick_tcp(), 24, Some(path.clone()));
    let appended = report(&cold).appended;

    // Simulate a second campaign process appending concurrently: whole
    // foreign-scope lines land between ours (both survive), and one torn
    // interleave — a fragment of a record with no newline — ends the file
    // (caught by the checksum, skipped).
    let foreign = checksummed(
        "{\"type\":\"entry\",\"scenario\":12345,\"impl\":\"Other 1.0\",\
         \"seed\":7,\"impair\":\"none\",\"fp_a\":1,\"fp_b\":2,\
         \"verdict\":{\"establishment_prevented\":false,\
         \"throughput_degradation\":false,\"throughput_gain\":false,\
         \"competing_degradation\":false,\"socket_leak\":false}}",
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(|l| format!("{l}\n")).collect();
    lines.insert(1, foreign.clone());
    lines.push(foreign[..foreign.len() / 2].to_owned()); // torn, no newline
    std::fs::write(&path, lines.concat()).unwrap();

    let warm = campaign(quick_tcp(), 24, Some(path.clone()));
    let warm_report = report(&warm);
    assert_eq!(warm.outcomes, cold.outcomes);
    assert_eq!(
        warm_report.entries_loaded,
        appended + 1,
        "our entries and the whole foreign line all load: {warm_report:?}"
    );
    assert_eq!(
        warm_report.entries_skipped, 1,
        "the torn interleave is skipped: {warm_report:?}"
    );
    assert!(
        warm_report.hit_rate() >= 0.5,
        "foreign-scope entries must not dilute our hits: {warm_report:?}"
    );
    std::fs::remove_file(&path).ok();
}
