//! Robustness layer: adversarial link impairments, noise-robust ensemble
//! verdicts, the per-run watchdog, and chaos-hardened journaling.
//!
//! These are the campaign-level contracts: impaired runs stay bit-for-bit
//! deterministic per seed, ensembles keep the false-positive column at
//! zero under every impairment preset, hung evaluations become `stalled`
//! outcomes instead of hanging the campaign, and a journal damaged
//! mid-write (torn tail, corrupted checksum) resumes cleanly.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use snake_core::{
    detect_enveloped, journal, Campaign, CampaignConfig, CampaignResult, ChaosPlan, Envelope,
    Executor, OutcomeKind, ProtocolKind, Recorder, ScenarioSpec, TestMetrics, DEFAULT_THRESHOLD,
};
use snake_dccp::DccpProfile;
use snake_netsim::{preset_names, Impairment};
use snake_tcp::Profile;

fn quick_tcp() -> ScenarioSpec {
    ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()))
}

fn temp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "snake-robustness-{}-{name}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&p).ok();
    p
}

fn outcome_key(result: &CampaignResult) -> Vec<(u64, bool, OutcomeKind)> {
    result
        .outcomes
        .iter()
        .map(|o| (o.strategy.id, o.verdict.flagged(), o.outcome_kind))
        .collect()
}

#[test]
fn impaired_campaigns_are_bit_identical_per_seed() {
    // Same seed + same preset must reproduce the entire campaign — the
    // impairment draws come from seeded per-link RNG lanes, not from any
    // ambient randomness.
    for protocol in [
        ProtocolKind::Tcp(Profile::linux_3_13()),
        ProtocolKind::Dccp(DccpProfile::linux_3_13()),
    ] {
        let spec = ScenarioSpec::quick(protocol)
            .with_impairment(Impairment::preset("chaos").expect("built-in preset"));
        let name = spec.protocol().implementation_name().to_owned();
        let config = |spec: ScenarioSpec| {
            CampaignConfig::builder(spec)
                .cap(12)
                .feedback_rounds(1)
                .retest(true)
                .baseline_reps(2)
                .parallelism(2)
                .build()
                .expect("valid config")
        };
        let a = Campaign::run(config(spec.clone())).unwrap();
        let b = Campaign::run(config(spec)).unwrap();
        assert_eq!(a.outcomes, b.outcomes, "{name}: impaired runs diverged");
        assert_eq!(a.table_row(), b.table_row());
        assert_eq!(a.envelope, b.envelope, "{name}: envelopes diverged");
    }
}

#[test]
fn ensemble_envelope_never_flags_unattacked_runs_under_any_preset() {
    // The noise floor itself must never look like an attack: an envelope
    // built from K seed-jittered no-attack runs contains every one of its
    // members under every built-in impairment preset, on both protocol
    // families.
    for preset in preset_names() {
        let impair = Impairment::preset(preset).expect("built-in preset");
        for protocol in [
            ProtocolKind::Tcp(Profile::linux_3_13()),
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
        ] {
            let base = ScenarioSpec::quick(protocol).with_impairment(impair);
            let name = base.protocol().implementation_name().to_owned();
            let members: Vec<TestMetrics> = (0..3u64)
                .map(|k| {
                    let seed = base.seed() ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    Executor::run(&base.clone().with_seed(seed), None)
                })
                .collect();
            let envelope = Envelope::from_members(&members, DEFAULT_THRESHOLD);
            for (k, member) in members.iter().enumerate() {
                let verdict = detect_enveloped(&envelope, member);
                assert!(
                    !verdict.flagged(),
                    "{name}/{preset}: no-attack run {k} flagged as {:?}",
                    verdict.labels()
                );
            }
        }
    }
}

#[test]
fn ensembles_keep_the_false_positive_column_at_zero() {
    // The acceptance check in campaign form: under adversarial link noise
    // with --baseline-reps 3, Table I's false-positive column stays zero.
    for preset in ["lossy", "flappy"] {
        let impair = Impairment::preset(preset).expect("built-in preset");
        for protocol in [
            ProtocolKind::Tcp(Profile::linux_3_13()),
            ProtocolKind::Dccp(DccpProfile::linux_3_13()),
        ] {
            let spec = ScenarioSpec::quick(protocol).with_impairment(impair);
            let name = spec.protocol().implementation_name().to_owned();
            let config = CampaignConfig::builder(spec)
                .cap(20)
                .feedback_rounds(1)
                .retest(true)
                .baseline_reps(3)
                .parallelism(2)
                .build()
                .expect("valid config");
            let result = Campaign::run(config).unwrap();
            assert_eq!(result.baseline_reps, 3);
            assert_eq!(result.envelope.members, 3);
            assert_eq!(
                result.false_positive_count(),
                0,
                "{name}/{preset}: spurious flags survived the ensemble + retest"
            );
        }
    }
}

#[test]
#[ignore = "full matrix for the chaos CI job: every profile x every impairment preset"]
fn full_matrix_keeps_the_false_positive_column_at_zero() {
    let mut protocols: Vec<ProtocolKind> =
        Profile::all().into_iter().map(ProtocolKind::Tcp).collect();
    protocols.push(ProtocolKind::Dccp(DccpProfile::linux_3_13()));
    protocols.push(ProtocolKind::Dccp(DccpProfile::linux_3_13_seqcheck_fixed()));
    for preset in preset_names() {
        let impair = Impairment::preset(preset).expect("built-in preset");
        for protocol in &protocols {
            let spec = ScenarioSpec::quick(protocol.clone()).with_impairment(impair);
            let name = spec.protocol().implementation_name().to_owned();
            let config = CampaignConfig::builder(spec)
                .cap(40)
                .feedback_rounds(1)
                .retest(true)
                .baseline_reps(3)
                .parallelism(2)
                .build()
                .expect("valid config");
            let result = Campaign::run(config).unwrap();
            assert_eq!(
                result.false_positive_count(),
                0,
                "{name}/{preset}: spurious flags survived the ensemble + retest"
            );
        }
    }
}

#[test]
fn stalling_strategy_is_quarantined_and_survives_resume() {
    let path = temp_journal("stall");
    // Strategy 2's evaluation livelocks (here: a long sleep standing in
    // for a hung engine); the watchdog must abandon it after the deadline,
    // retry with backoff, then quarantine it as a `stalled` outcome while
    // the rest of the batch completes normally.
    let config = |fault: bool, resume: bool| {
        let mut builder = CampaignConfig::builder(quick_tcp())
            .cap(5)
            .feedback_rounds(1)
            .retest(false)
            .parallelism(2)
            // The fault hook forces memoization off and the journal header
            // records that; the resumed (hook-free) run must match it
            // explicitly or resume-append would refuse the journal as
            // memo-setting drift.
            .memoize(false)
            .journal(path.clone())
            .resume(resume)
            // Comfortably above a healthy quick-scenario evaluation, far
            // below the injected hang.
            .deadline(Duration::from_secs(3))
            .stall_retries(1)
            .stall_backoff(Duration::from_millis(10));
        if fault {
            builder = builder.fault_hook(Arc::new(|s| {
                if s.id == 2 {
                    std::thread::sleep(Duration::from_secs(60));
                }
            }));
        }
        builder.build().expect("valid config")
    };
    let result = Campaign::run(config(true, false)).expect("stalls must not abort the campaign");
    assert_eq!(result.strategies_tried(), 5);
    assert_eq!(result.stalled(), 1, "exactly one quarantined outcome");
    assert!(
        result.stalls >= 2,
        "initial attempt + one retry both timed out (saw {})",
        result.stalls
    );
    assert_eq!(result.quarantined, 1);
    let stalled = result
        .outcomes
        .iter()
        .find(|o| o.strategy.id == 2)
        .expect("outcome for the hung strategy");
    assert_eq!(stalled.outcome_kind, OutcomeKind::Stalled);
    let msg = stalled.error.as_deref().unwrap_or("");
    assert!(msg.contains("quarantined"), "{msg}");
    assert!(!stalled.verdict.flagged(), "stalled runs are never attacks");

    // Kill-and-resume: the journaled `stalled` outcome is reused, so the
    // resumed campaign (run without the fault this time) re-runs nothing
    // and reports the same table.
    let resumed = Campaign::run(config(false, true)).unwrap();
    assert_eq!(resumed.resumed, 5, "all five outcomes reused");
    assert_eq!(resumed.stalled(), 1, "the quarantine verdict is durable");
    assert_eq!(resumed.stalls, 0, "nothing re-ran, so nothing re-stalled");
    assert_eq!(outcome_key(&resumed), outcome_key(&result));
    std::fs::remove_file(&path).ok();
}

#[test]
fn watchdog_leaves_healthy_campaigns_untouched() {
    // A generous deadline must be invisible: same outcomes as no deadline.
    let config = |deadline: Option<Duration>| {
        let mut builder = CampaignConfig::builder(quick_tcp())
            .cap(8)
            .feedback_rounds(1)
            .retest(false)
            .parallelism(2);
        if let Some(d) = deadline {
            builder = builder.deadline(d);
        }
        builder.build().expect("valid config")
    };
    let watched = Campaign::run(config(Some(Duration::from_secs(120)))).unwrap();
    let unwatched = Campaign::run(config(None)).unwrap();
    assert_eq!(watched.stalled(), 0);
    assert_eq!(watched.quarantined, 0);
    assert_eq!(outcome_key(&watched), outcome_key(&unwatched));
    assert_eq!(watched.table_row(), unwatched.table_row());
}

#[test]
fn chaos_plan_faults_are_absorbed_not_fatal() {
    // Worker panics and injected journal write failures at once: every
    // strategy still gets exactly one journaled outcome, the panics land
    // as `errored`, and the single-retry journal policy absorbs every
    // injected write failure.
    let path = temp_journal("chaos");
    let recorder = Arc::new(Recorder::new());
    let config = CampaignConfig::builder(quick_tcp())
        .cap(12)
        .feedback_rounds(1)
        .retest(false)
        .parallelism(3)
        .journal(path.clone())
        .observer(recorder.clone())
        .chaos(ChaosPlan {
            panic_every: Some(5),
            journal_fail_every: Some(3),
            ..ChaosPlan::default()
        })
        .build()
        .expect("valid config");
    let result = Campaign::run(config).expect("chaos faults must be absorbed");
    assert_eq!(result.strategies_tried(), 12);
    assert!(result.errored() > 0, "the panic schedule must have fired");
    let loaded = journal::load(&path).unwrap();
    assert_eq!(loaded.outcomes.len(), 12, "no outcome lost to write faults");
    let snapshot = recorder.snapshot();
    assert!(
        snapshot.counter("campaign.journal_faults") > 0,
        "the journal fault schedule must have fired"
    );
    assert_eq!(
        snapshot.counter("campaign.journal_faults"),
        snapshot.counter("campaign.journal_retries"),
        "every injected write failure is absorbed by exactly one retry"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn chaos_stall_preset_exercises_the_watchdog() {
    // The `stalls` preset sleeps 400 ms on every 7th strategy; with a
    // 150 ms deadline and no retries those evaluations are quarantined.
    let plan = ChaosPlan::preset("stalls").expect("built-in preset");
    let config = CampaignConfig::builder(quick_tcp())
        .cap(8)
        .feedback_rounds(1)
        .retest(false)
        .parallelism(2)
        .chaos(plan)
        .deadline(Duration::from_millis(150))
        .stall_retries(0)
        .build()
        .expect("valid config");
    let result = Campaign::run(config).unwrap();
    assert_eq!(result.strategies_tried(), 8);
    assert!(
        result.stalled() > 0,
        "the stall schedule must have tripped the watchdog"
    );
    assert_eq!(result.stalled(), result.quarantined);
}

#[test]
fn torn_and_corrupted_journal_lines_resume_cleanly() {
    let journal_a = temp_journal("damage-full");
    let journal_b = temp_journal("damage-resumed");
    let config = |journal: PathBuf, resume: bool| {
        CampaignConfig::builder(quick_tcp())
            .cap(10)
            .feedback_rounds(1)
            .retest(false)
            .parallelism(2)
            .journal(journal)
            .resume(resume)
            .build()
            .expect("valid config")
    };
    let full = Campaign::run(config(journal_a.clone(), false)).unwrap();

    // Damage the journal the way a kill mid-write plus a disk hiccup
    // would: the last outcome line is torn in half, and the line before it
    // has one checksum digit flipped. Both must be skipped on resume —
    // the checksummed format means a corrupted line is detected, never
    // trusted.
    let text = std::fs::read_to_string(&journal_a).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 11, "header + ten outcomes");
    let mut damaged: Vec<String> = lines[..9].iter().map(|l| (*l).to_string()).collect();
    let corrupt = {
        let line = lines[9];
        let flipped = if line.ends_with('0') { "1" } else { "0" };
        format!("{}{flipped}", &line[..line.len() - 1])
    };
    damaged.push(corrupt);
    damaged.push(lines[10][..lines[10].len() / 2].to_string());
    std::fs::write(&journal_b, damaged.join("\n")).unwrap();

    let resumed = Campaign::run(config(journal_b.clone(), true)).unwrap();
    assert_eq!(resumed.resumed, 8, "eight intact outcomes reused");
    assert_eq!(
        resumed.journal_lines_skipped, 2,
        "torn + corrupted lines skipped"
    );
    assert_eq!(outcome_key(&resumed), outcome_key(&full));
    assert_eq!(resumed.table_row(), full.table_row());

    // The repaired journal is complete again: a further resume re-runs
    // nothing at all.
    let again = Campaign::run(config(journal_b.clone(), true)).unwrap();
    assert_eq!(again.resumed, 10);
    std::fs::remove_file(&journal_a).ok();
    std::fs::remove_file(&journal_b).ok();
}
