//! Scheduler-backend equivalence: a campaign driven by the hierarchical
//! timer wheel must be indistinguishable — per-strategy TSV, memo
//! provenance markers, manifest (modulo backend-internal bookkeeping) —
//! from the same campaign driven by the reference binary-heap scheduler,
//! on every profile, forked and from-scratch, at worker counts 1 and 4.
//!
//! Why this holds by construction: both backends dispatch the identical
//! total `(fire time, push sequence)` order. The wheel's ghost keys stand
//! in for the heap's cancellation tombstones (so budget and clock
//! semantics agree event for event), per-channel delivery batching
//! consumes the exact sequence numbers the per-packet path would, and the
//! packet arena is shared code on both sides. What legitimately differs
//! is *internal bookkeeping*: the heap purges cancelled records lazily
//! and counts compactions, while the wheel removes timers natively at
//! cancel time — so `timers_purged` / `queue_compactions` /
//! `queue_depth_hwm` and the approximate clone-cost gauges are stripped
//! before manifests are compared, and everything else must match bit for
//! bit.
//!
//! The backend is selected through the process-global `SNAKE_NETSIM_SCHED`
//! environment variable (compiled in via the netsim `heap-sched` feature),
//! so every test serializes on one lock.

use std::sync::{Arc, Mutex};

use snake_core::{
    build_run_manifest, Campaign, CampaignConfig, CampaignResult, ProtocolKind, Recorder,
    RecorderSnapshot, ScenarioSpec,
};
use snake_dccp::DccpProfile;
use snake_json::Value;
use snake_netsim::{Impairment, Simulator};
use snake_tcp::Profile;

/// Serializes every test in this file: the scheduler selector is process
/// environment, and concurrent campaigns would race on it.
static LOCK: Mutex<()> = Mutex::new(());

/// The six-profile matrix: every implementation under test plus one
/// impaired link configuration (which exercises the non-batched delivery
/// path — reordering channels bypass the FIFO fast path).
fn profiles() -> Vec<(&'static str, ScenarioSpec)> {
    let quick = |p: ProtocolKind| ScenarioSpec::quick(p);
    vec![
        (
            "linux-3.0.0",
            quick(ProtocolKind::Tcp(Profile::linux_3_0_0())),
        ),
        (
            "linux-3.13",
            quick(ProtocolKind::Tcp(Profile::linux_3_13())),
        ),
        (
            "windows-8.1",
            quick(ProtocolKind::Tcp(Profile::windows_8_1())),
        ),
        (
            "windows-95",
            quick(ProtocolKind::Tcp(Profile::windows_95())),
        ),
        ("dccp", quick(ProtocolKind::Dccp(DccpProfile::linux_3_13()))),
        (
            "linux-3.13+lossy",
            quick(ProtocolKind::Tcp(Profile::linux_3_13()))
                .with_impairment(Impairment::preset("lossy").expect("built-in preset")),
        ),
    ]
}

/// One observed campaign under the currently selected scheduler backend.
fn run(
    spec: ScenarioSpec,
    snapshot_fork: bool,
    parallelism: usize,
) -> (CampaignResult, RecorderSnapshot) {
    let recorder = Arc::new(Recorder::new());
    let config = CampaignConfig::builder(spec)
        .cap(8)
        .feedback_rounds(1)
        .retest(false)
        .memoize(true)
        .snapshot_fork(snapshot_fork)
        .parallelism(parallelism)
        .observer(recorder.clone())
        .build()
        .expect("valid config");
    let result = Campaign::run(config).expect("valid baseline");
    (result, recorder.snapshot())
}

/// Runs the same campaign on the reference heap scheduler.
fn run_on_heap(
    spec: ScenarioSpec,
    snapshot_fork: bool,
    parallelism: usize,
) -> (CampaignResult, RecorderSnapshot) {
    std::env::set_var("SNAKE_NETSIM_SCHED", "heap");
    let outcome = std::panic::catch_unwind(|| run(spec, snapshot_fork, parallelism));
    std::env::remove_var("SNAKE_NETSIM_SCHED");
    outcome.unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// Manifest keys that are scheduler-backend bookkeeping, not campaign
/// observables: the heap purges/compacts where the wheel cancels
/// natively, queue-depth accounting counts FIFO residents differently,
/// and clone-cost gauges approximate backend-specific structures.
const BACKEND_INTERNAL_NETSIM_KEYS: &[&str] = &[
    "timers_purged",
    "queue_compactions",
    "queue_depth_hwm",
    "snapshot_clone_bytes",
    "fork_clone_bytes",
];

/// The manifest with nondeterministic sections (`timing`, `shards`) and
/// backend-internal netsim keys removed — the cross-backend bit-identity
/// contract surface. `netsim.events`, `netsim.timers_cancelled`, and the
/// arena alloc/reuse totals stay in: both backends must agree on them.
fn stable_json(result: &CampaignResult, snapshot: &RecorderSnapshot) -> String {
    let manifest = build_run_manifest(result, snapshot, 0.0);
    match manifest.to_json() {
        Value::Obj(pairs) => Value::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "timing" && k != "shards")
                .map(|(k, v)| {
                    if k != "netsim" {
                        return (k, v);
                    }
                    let stripped = match v {
                        Value::Obj(inner) => Value::Obj(
                            inner
                                .into_iter()
                                .filter(|(ik, _)| {
                                    !BACKEND_INTERNAL_NETSIM_KEYS.contains(&ik.as_str())
                                })
                                .collect(),
                        ),
                        other => other,
                    };
                    (k, stripped)
                })
                .collect(),
        )
        .to_string_compact(),
        other => other.to_string_compact(),
    }
}

fn assert_identical(
    label: &str,
    wheel: &(CampaignResult, RecorderSnapshot),
    heap: &(CampaignResult, RecorderSnapshot),
) {
    assert_eq!(
        wheel.0.export_outcomes_tsv(),
        heap.0.export_outcomes_tsv(),
        "{label}: per-strategy TSV must be byte-identical across schedulers"
    );
    assert_eq!(
        stable_json(&wheel.0, &wheel.1),
        stable_json(&heap.0, &heap.1),
        "{label}: manifests must agree outside backend-internal bookkeeping"
    );
    assert_eq!(
        wheel.0.outcomes.iter().map(|o| &o.memo).collect::<Vec<_>>(),
        heap.0.outcomes.iter().map(|o| &o.memo).collect::<Vec<_>>(),
        "{label}: memo provenance markers must not depend on the scheduler"
    );
}

/// Sanity-checks the selector itself: without the env var campaigns run
/// on the wheel, with it they run on the heap — so the comparisons below
/// really do cross backends.
#[test]
fn scheduler_selector_actually_switches_backends() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(Simulator::new(0).scheduler_name(), "wheel");
    std::env::set_var("SNAKE_NETSIM_SCHED", "heap");
    let name = Simulator::new(0).scheduler_name();
    std::env::remove_var("SNAKE_NETSIM_SCHED");
    assert_eq!(name, "heap");
    assert_eq!(
        Simulator::new_with_heap_scheduler(0).scheduler_name(),
        "heap"
    );
}

#[test]
fn wheel_matches_heap_from_scratch_on_every_profile() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (name, spec) in profiles() {
        let wheel = run(spec.clone(), false, 1);
        let heap = run_on_heap(spec, false, 1);
        assert_identical(name, &wheel, &heap);
    }
}

#[test]
fn wheel_matches_heap_forked_on_every_profile() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (name, spec) in profiles() {
        let wheel = run(spec.clone(), true, 1);
        let heap = run_on_heap(spec, true, 1);
        assert_identical(&format!("{name}+fork"), &wheel, &heap);
    }
}

#[test]
fn wheel_matches_heap_at_parallelism_four() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (name, spec) in profiles() {
        for &snapshot_fork in &[false, true] {
            let wheel = run(spec.clone(), snapshot_fork, 4);
            let heap = run_on_heap(spec.clone(), snapshot_fork, 4);
            assert_identical(&format!("{name}+par4+fork={snapshot_fork}"), &wheel, &heap);
        }
    }
}
