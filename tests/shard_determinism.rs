//! Shard-merge determinism: a campaign sharded across worker *processes*
//! must be indistinguishable — per-strategy TSV, manifest (modulo the
//! wall-clock `timing` and `shards` sections), memo markers — from the
//! single-process run, on every profile, with and without a shard dying
//! mid-campaign.
//!
//! Why this holds by construction: workers only *evaluate* strategies;
//! every admission decision (memo-ledger lookup and insert, journal
//! append, outcome accounting) happens on the controller, strictly in
//! strategy-index order through the same reorder buffer the thread-pool
//! path uses. A dead shard's unfinished indices are re-dispatched to the
//! surviving shards, so a crash changes only who evaluated a strategy,
//! never what was admitted.
//!
//! These tests spawn real `snake shard-worker` child processes (the
//! binary Cargo builds for this test run) and serialize on a global lock:
//! the `SNAKE_SHARD_EXIT_AFTER` kill-switch is process-global environment,
//! and concurrently launching pools would otherwise inherit it.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use snake_core::{
    build_run_manifest, Campaign, CampaignConfig, CampaignResult, ProtocolKind, Recorder,
    RecorderSnapshot, ScenarioSpec,
};
use snake_dccp::DccpProfile;
use snake_json::Value;
use snake_netsim::Impairment;
use snake_tcp::Profile;

/// Serializes every test in this file: shard pools read the process
/// environment at launch, so kill-switch tests cannot overlap anything.
static LOCK: Mutex<()> = Mutex::new(());

/// The `snake` binary Cargo built alongside this test — the worker the
/// controller spawns.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_snake"))
}

/// The six-profile matrix from the issue: every implementation under
/// test plus one impaired link configuration.
fn profiles() -> Vec<(&'static str, ScenarioSpec)> {
    let quick = |p: ProtocolKind| ScenarioSpec::quick(p);
    vec![
        (
            "linux-3.0.0",
            quick(ProtocolKind::Tcp(Profile::linux_3_0_0())),
        ),
        (
            "linux-3.13",
            quick(ProtocolKind::Tcp(Profile::linux_3_13())),
        ),
        (
            "windows-8.1",
            quick(ProtocolKind::Tcp(Profile::windows_8_1())),
        ),
        (
            "windows-95",
            quick(ProtocolKind::Tcp(Profile::windows_95())),
        ),
        ("dccp", quick(ProtocolKind::Dccp(DccpProfile::linux_3_13()))),
        (
            "linux-3.13+lossy",
            quick(ProtocolKind::Tcp(Profile::linux_3_13()))
                .with_impairment(Impairment::preset("lossy").expect("built-in preset")),
        ),
    ]
}

/// One observed campaign at the given shard count (0 = in-process).
fn run(spec: ScenarioSpec, shards: usize, cap: usize) -> (CampaignResult, RecorderSnapshot) {
    let recorder = Arc::new(Recorder::new());
    let mut builder = CampaignConfig::builder(spec)
        .cap(cap)
        .feedback_rounds(1)
        .retest(false)
        .memoize(true)
        .observer(recorder.clone());
    if shards > 0 {
        builder = builder.shards(shards).shard_worker_bin(worker_bin());
    }
    let config = builder.build().expect("valid config");
    let result = Campaign::run(config).expect("valid baseline");
    (result, recorder.snapshot())
}

/// The manifest with its nondeterministic sections (`timing`, and for
/// sharded runs `shards`) removed — the bit-identity contract surface.
fn stable_json(result: &CampaignResult, snapshot: &RecorderSnapshot) -> String {
    let manifest = build_run_manifest(result, snapshot, 0.0);
    match manifest.to_json() {
        Value::Obj(pairs) => Value::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "timing" && k != "shards")
                .collect(),
        )
        .to_string_compact(),
        other => other.to_string_compact(),
    }
}

/// Asserts the sharded run really ran sharded (no silent in-process
/// fallback) and matches the reference bit for bit.
fn assert_identical(
    label: &str,
    reference: &(CampaignResult, RecorderSnapshot),
    sharded: &(CampaignResult, RecorderSnapshot),
    workers: u64,
) {
    assert_eq!(
        sharded.1.counter("shard.workers"),
        workers,
        "{label}: the sharded run must not silently fall back in-process"
    );
    assert_eq!(
        reference.0.export_outcomes_tsv(),
        sharded.0.export_outcomes_tsv(),
        "{label}: per-strategy TSV must be byte-identical"
    );
    assert_eq!(
        stable_json(&reference.0, &reference.1),
        stable_json(&sharded.0, &sharded.1),
        "{label}: manifests must agree outside `timing`/`shards`"
    );
    assert_eq!(
        reference
            .0
            .outcomes
            .iter()
            .map(|o| &o.memo)
            .collect::<Vec<_>>(),
        sharded
            .0
            .outcomes
            .iter()
            .map(|o| &o.memo)
            .collect::<Vec<_>>(),
        "{label}: every memo provenance marker must survive sharding"
    );
}

#[test]
fn four_shards_match_single_process_on_every_profile() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (name, spec) in profiles() {
        let reference = run(spec.clone(), 0, 10);
        let sharded = run(spec, 4, 10);
        assert_identical(name, &reference, &sharded, 4);
    }
}

#[test]
fn four_shards_match_single_process_on_a_generated_multiflow_profile() {
    // The acceptance scenario of the topology/flow redesign: a generated
    // 256-host star with 256 concurrent flows (200 of them attacked) must
    // shard exactly like the dumbbell — byte-identical TSV and manifest
    // (modulo `timing`/`shards`) between 1 and 4 worker processes, fresh
    // and with the wire carrying the full topology + flow mix.
    use snake_core::{FlowGroup, FlowRole, TopologyKind};
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = ScenarioSpec::builder(ProtocolKind::Tcp(Profile::linux_3_13()))
        .data_secs(2)
        .grace_secs(6)
        .topology(TopologyKind::Star, 256)
        .flows(vec![
            FlowGroup {
                role: FlowRole::Attacked,
                count: 200,
            },
            FlowGroup {
                role: FlowRole::Bulk,
                count: 28,
            },
            FlowGroup {
                role: FlowRole::RequestResponse,
                count: 16,
            },
            FlowGroup {
                role: FlowRole::SynPressure,
                count: 12,
            },
        ])
        .build()
        .expect("valid 256-host profile");
    let reference = run(spec.clone(), 0, 6);
    let rerun = run(spec.clone(), 0, 6);
    assert_eq!(
        reference.0.export_outcomes_tsv(),
        rerun.0.export_outcomes_tsv(),
        "same seed must reproduce the multi-flow TSV byte for byte"
    );
    let sharded = run(spec, 4, 6);
    assert_identical("star-256-multiflow", &reference, &sharded, 4);
}

#[test]
fn a_shard_killed_mid_range_changes_nothing() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    let reference = run(spec.clone(), 0, 12);

    // Shard 1 exits (kill-switch in the worker binary) right after its
    // second outcome — mid-range, with work still outstanding. The
    // controller must re-dispatch its unfinished indices to the
    // survivors without re-admitting anything already merged.
    std::env::set_var("SNAKE_SHARD_EXIT_AFTER", "1:2");
    let sharded = run(spec, 4, 12);
    std::env::remove_var("SNAKE_SHARD_EXIT_AFTER");

    assert_identical("kill-mid-range", &reference, &sharded, 4);
    assert!(
        sharded.1.counter("shard.ranges_redispatched") > 0,
        "the dead shard's outstanding ranges must actually be re-dispatched"
    );
}

#[test]
fn a_shard_dead_before_its_first_outcome_changes_nothing() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()));
    let reference = run(spec.clone(), 0, 10);

    // Shard 0 exits immediately after the handshake, before evaluating
    // anything: the degenerate "died before journaling" case.
    std::env::set_var("SNAKE_SHARD_EXIT_AFTER", "0:0");
    let sharded = run(spec, 2, 10);
    std::env::remove_var("SNAKE_SHARD_EXIT_AFTER");

    assert_identical("dead-at-start", &reference, &sharded, 2);
}
