//! Validates SNAKE's packet-only state tracking against the engines'
//! ground-truth states. The tracker never reads engine internals (the
//! paper's tool has no such access), so this cross-check is the evidence
//! that wire-level inference is good enough to key strategies on.

use snake_netsim::{Addr, Dumbbell, DumbbellSpec, SimTime, Simulator};
use snake_proxy::{AttackProxy, DccpAdapter, ProxyConfig, TcpAdapter};
use snake_tcp::{Profile, ServerApp, TcpHost};

fn proxy_config(d: &Dumbbell, port: u16) -> ProxyConfig {
    ProxyConfig {
        client_node: d.client1,
        client_is_a: true,
        server: Addr::new(d.server1, port),
        client_port_guess: 40_000,
        seed: 3,
    }
}

#[test]
fn tcp_tracker_matches_engine_through_data_transfer() {
    let mut sim = Simulator::new(17);
    let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
    let mut server = TcpHost::new(Profile::linux_3_13());
    server.listen(80, ServerApp::bulk_sender(u64::MAX));
    sim.set_agent(d.server1, server);
    let mut client = TcpHost::new(Profile::linux_3_13());
    client.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
    sim.set_agent(d.client1, client);
    sim.attach_tap(
        d.proxy_link,
        AttackProxy::new(TcpAdapter, proxy_config(&d, 80), None),
    );

    // Sample at several points during the transfer: engine truth and
    // tracked state must agree once the wire has quiesced.
    for secs in [2, 4, 8] {
        sim.run_until(SimTime::from_secs(secs));
        let engine_client = sim.agent::<TcpHost>(d.client1).unwrap().conn_metrics()[0].state;
        let engine_server = sim.agent::<TcpHost>(d.server1).unwrap().conn_metrics()[0].state;
        let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
        assert_eq!(
            proxy.tracker().client().current_name(),
            engine_client.name(),
            "client at t={secs}s"
        );
        assert_eq!(
            proxy.tracker().server().current_name(),
            engine_server.name(),
            "server at t={secs}s"
        );
    }
}

#[test]
fn tcp_tracker_follows_teardown() {
    let mut sim = Simulator::new(17);
    let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
    // A bounded transfer so the teardown handshake happens naturally.
    let mut server = TcpHost::new(Profile::linux_3_13());
    server.listen(80, ServerApp::bulk_sender(300_000));
    sim.set_agent(d.server1, server);
    let mut client = TcpHost::new(Profile::linux_3_13());
    client.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
    sim.set_agent(d.client1, client);
    sim.attach_tap(
        d.proxy_link,
        AttackProxy::new(TcpAdapter, proxy_config(&d, 80), None),
    );

    // Server finishes its 300 kB and the client app then closes cleanly.
    sim.run_until(SimTime::from_secs(3));
    sim.schedule_control(SimTime::from_secs(3), d.client1, |agent, ctx| {
        let any: &mut dyn std::any::Any = agent;
        any.downcast_mut::<TcpHost>().unwrap().close_all(ctx);
    });
    sim.run_until(SimTime::from_secs(10));

    let engine_client = sim.agent::<TcpHost>(d.client1).unwrap().conn_metrics()[0].state;
    let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
    let tracked = proxy.tracker().client().current_name();
    assert_eq!(tracked, engine_client.name(), "teardown state agrees");
    // The transfer completed and the close handshake ran: the client must
    // have left ESTABLISHED.
    assert_ne!(tracked, "ESTABLISHED");
}

#[test]
fn dccp_tracker_matches_engine() {
    use snake_dccp::{DccpHost, DccpProfile, DccpServerApp};
    let mut sim = Simulator::new(23);
    let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
    let mut server = DccpHost::new(DccpProfile::linux_3_13());
    server.listen(5_001, DccpServerApp::bulk_sender(u64::MAX));
    sim.set_agent(d.server1, server);
    let mut client = DccpHost::new(DccpProfile::linux_3_13());
    client.connect_at(SimTime::ZERO, Addr::new(d.server1, 5_001));
    sim.set_agent(d.client1, client);
    sim.attach_tap(
        d.proxy_link,
        AttackProxy::new(DccpAdapter, proxy_config(&d, 5_001), None),
    );

    sim.run_until(SimTime::from_secs(5));
    let engine_client = sim.agent::<DccpHost>(d.client1).unwrap().conn_metrics()[0].state;
    let engine_server = sim.agent::<DccpHost>(d.server1).unwrap().conn_metrics()[0].state;
    let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
    assert_eq!(
        proxy.tracker().client().current_name(),
        engine_client.name()
    );
    assert_eq!(
        proxy.tracker().server().current_name(),
        engine_server.name()
    );
    assert_eq!(engine_client.name(), "OPEN");
}

#[test]
fn tracker_statistics_account_for_all_observed_packets() {
    let mut sim = Simulator::new(17);
    let d = Dumbbell::build(&mut sim, DumbbellSpec::evaluation_default());
    let mut server = TcpHost::new(Profile::linux_3_13());
    server.listen(80, ServerApp::bulk_sender(u64::MAX));
    sim.set_agent(d.server1, server);
    let mut client = TcpHost::new(Profile::linux_3_13());
    client.connect_at(SimTime::ZERO, Addr::new(d.server1, 80));
    sim.set_agent(d.client1, client);
    sim.attach_tap(
        d.proxy_link,
        AttackProxy::new(TcpAdapter, proxy_config(&d, 80), None),
    );
    sim.run_until(SimTime::from_secs(5));

    let proxy = sim.tap::<AttackProxy>(d.proxy_link).unwrap();
    let seen = proxy.report().packets_seen;
    // Every packet is observed by both endpoint trackers (one as send,
    // one as recv), so each tracker's send-total plus recv-total equals
    // the packet count.
    for tracker in [proxy.tracker().client(), proxy.tracker().server()] {
        let total: u64 = tracker.visited().map(|(_, s)| s.packet_count()).sum();
        assert_eq!(total, seen);
    }
}
