//! Shard-wire fault injection: every wire-chaos preset must be *absorbed*
//! by a distributed campaign — the run completes and its per-strategy
//! TSV, manifest (modulo the wall-clock `timing` and scheduling-dependent
//! `shards` sections) and memo provenance markers are byte-identical to
//! an unperturbed single-process run. Recovery may change *who* evaluated
//! a strategy (re-dispatch, reconnect, in-process fallback), never what
//! was admitted.
//!
//! The faults land on the controller's read path by outcome-frame ordinal
//! (heartbeats excluded), so the same preset perturbs the same frames
//! every run:
//!
//! * `wire-truncate` / `wire-corrupt` — a checksum-failing frame is a
//!   protocol death: the shard is killed, its outstanding work re-queued.
//! * `wire-drop` — the frame silently never happened. Either the next
//!   frame from that shard trips the in-contract check, or — if it was
//!   the shard's *last* frame — the controller's progress deadline fires
//!   (heartbeats keep the read deadline fed, so only the absence of
//!   outcome progress can reveal the loss).
//! * `wire-delay` — a slow-but-alive worker; nothing may die.
//! * `wire-hang` — shard 0 goes silent (heartbeats stopped, wire open);
//!   the read deadline must declare it dead and its work re-dispatch.
//!
//! Like `shard_determinism`, these tests spawn real `snake shard-worker`
//! child processes and serialize on a global lock.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use snake_core::{
    build_run_manifest, Campaign, CampaignConfig, CampaignResult, ChaosPlan, ProtocolKind,
    Recorder, RecorderSnapshot, ScenarioSpec,
};
use snake_json::Value;
use snake_tcp::Profile;

/// Serializes every test in this file: shard pools read the process
/// environment at launch, so runs cannot overlap kill-switch state.
static LOCK: Mutex<()> = Mutex::new(());

/// The `snake` binary Cargo built alongside this test — the worker the
/// controller spawns.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_snake"))
}

fn spec() -> ScenarioSpec {
    ScenarioSpec::quick(ProtocolKind::Tcp(Profile::linux_3_13()))
}

/// One observed campaign; `chaos` and `shards` vary, everything else is
/// pinned. Chaos runs use a short supervision clock (heartbeat 100 ms,
/// shard-timeout 1 s) so read-deadline and progress-deadline recoveries
/// resolve in test time rather than the 10 s production default.
fn run(shards: usize, chaos: Option<ChaosPlan>) -> (CampaignResult, RecorderSnapshot) {
    let recorder = Arc::new(Recorder::new());
    let mut builder = CampaignConfig::builder(spec())
        .cap(10)
        .feedback_rounds(1)
        .retest(false)
        .memoize(true)
        .observer(recorder.clone());
    if shards > 0 {
        builder = builder
            .shards(shards)
            .shard_worker_bin(worker_bin())
            .heartbeat(Duration::from_millis(100))
            .shard_timeout(Duration::from_secs(1));
    }
    if let Some(plan) = chaos {
        builder = builder.chaos(plan);
    }
    let config = builder.build().expect("valid config");
    let result = Campaign::run(config).expect("valid baseline");
    (result, recorder.snapshot())
}

/// The manifest with its nondeterministic sections (`timing`, and for
/// sharded runs `shards`) removed — the bit-identity contract surface.
fn stable_json(result: &CampaignResult, snapshot: &RecorderSnapshot) -> String {
    let manifest = build_run_manifest(result, snapshot, 0.0);
    match manifest.to_json() {
        Value::Obj(pairs) => Value::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "timing" && k != "shards")
                .collect(),
        )
        .to_string_compact(),
        other => other.to_string_compact(),
    }
}

/// Asserts the chaos run is indistinguishable from the unperturbed
/// reference: TSV, stable manifest, and memo markers all byte-identical.
fn assert_absorbed(
    label: &str,
    reference: &(CampaignResult, RecorderSnapshot),
    chaotic: &(CampaignResult, RecorderSnapshot),
) {
    assert_eq!(
        reference.0.export_outcomes_tsv(),
        chaotic.0.export_outcomes_tsv(),
        "{label}: per-strategy TSV must survive wire chaos byte for byte"
    );
    assert_eq!(
        stable_json(&reference.0, &reference.1),
        stable_json(&chaotic.0, &chaotic.1),
        "{label}: manifests must agree outside `timing`/`shards`"
    );
    assert_eq!(
        reference
            .0
            .outcomes
            .iter()
            .map(|o| &o.memo)
            .collect::<Vec<_>>(),
        chaotic
            .0
            .outcomes
            .iter()
            .map(|o| &o.memo)
            .collect::<Vec<_>>(),
        "{label}: memo provenance markers must survive wire chaos"
    );
}

#[test]
fn every_wire_fault_preset_is_absorbed_without_changing_output() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reference = run(0, None);
    for preset in ["wire-drop", "wire-truncate", "wire-corrupt", "wire-delay"] {
        let plan = ChaosPlan::preset(preset).expect("built-in preset");
        let chaotic = run(2, Some(plan));
        assert_absorbed(preset, &reference, &chaotic);
        assert_eq!(
            chaotic.1.counter("shard.workers"),
            2,
            "{preset}: both workers must have handshaked before the chaos"
        );
    }
}

#[test]
fn a_hung_worker_trips_the_read_deadline_and_its_work_is_redone() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let reference = run(0, None);
    let plan = ChaosPlan::preset("wire-hang").expect("built-in preset");
    let chaotic = run(2, Some(plan));
    assert_absorbed("wire-hang", &reference, &chaotic);
    assert!(
        chaotic.1.counter("shard.heartbeat.missed") >= 1,
        "the hung shard must be declared dead by read-deadline expiry"
    );
    assert!(
        chaotic.1.counter("shard.ranges_redispatched") >= 1,
        "the hung shard's outstanding work must be re-dispatched"
    );
}

#[test]
fn a_delayed_wire_kills_nothing() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = ChaosPlan::preset("wire-delay").expect("built-in preset");
    let chaotic = run(2, Some(plan));
    assert_eq!(
        chaotic.1.counter("shard.heartbeat.missed"),
        0,
        "a slow-but-alive worker must never trip the read deadline"
    );
    assert_eq!(
        chaotic.1.counter("shard.reconnects"),
        0,
        "a delayed frame is late, not lost: no slot may be replaced"
    );
}

#[test]
fn wire_faults_without_a_wire_are_rejected_at_build_time() {
    for preset in [
        "wire-drop",
        "wire-truncate",
        "wire-corrupt",
        "wire-delay",
        "wire-hang",
    ] {
        let plan = ChaosPlan::preset(preset).expect("built-in preset");
        assert!(plan.has_wire_faults(), "{preset} is a wire-fault plan");
        assert!(
            !plan.has_eval_faults(),
            "{preset} must leave evaluation untouched so memoization stays on"
        );
        let err = CampaignConfig::builder(spec())
            .cap(4)
            .chaos(plan)
            .build()
            .expect_err("wire chaos without shards must not build");
        assert!(
            err.to_string().contains("shards"),
            "{preset}: the error must point at the missing shard wire, got: {err}"
        );
    }
    // The controller kill-switch is not a wire fault: it acts on the
    // admission path and works in-process too (covered end to end by the
    // `controller_resume` suite).
    let kill = ChaosPlan::preset("controller-kill").expect("built-in preset");
    assert!(!kill.has_wire_faults() && !kill.has_eval_faults());
}
