//! Offline-compatible subset of the `criterion` bench API.
//!
//! The build environment has no crates registry, so the slice of criterion
//! the workspace's `harness = false` benches use is vendored here. The
//! harness performs a simple warmup + timed-sample measurement and prints
//! mean wall-clock time per iteration — enough to compare runs locally,
//! without upstream's statistical machinery or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement driver passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    last: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running it `samples` times after one warmup call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last = Some(start.elapsed() / self.samples as u32);
    }
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Ignored in the offline stub (kept for API compatibility).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        self.criterion
            .report(&format!("{}/{}", self.name, id), b.last);
        self
    }

    /// Runs a benchmark that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id), b.last);
        self
    }

    /// Finishes the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 20,
            last: None,
        };
        f(&mut b);
        let name = id.to_string();
        self.report(&name, b.last);
        self
    }

    fn report(&mut self, name: &str, time: Option<Duration>) {
        match time {
            Some(t) => println!("bench {name:<40} {t:>12.2?}/iter"),
            None => println!("bench {name:<40} (no measurement)"),
        }
    }
}

/// Opaque value barrier preventing the optimiser from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0;
        group.bench_function("fib", |b| {
            b.iter(|| {
                ran += 1;
                fib(10)
            });
        });
        group.finish();
        // One warmup + three timed samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &7u64, |b, n| {
            b.iter(|| fib(*n));
        });
        group.finish();
    }
}
