//! Offline-compatible subset of the `proptest` API.
//!
//! The build environment has no crates registry, so the slice of proptest
//! the workspace's property tests use is vendored here: the `proptest!`
//! macro (with optional `#![proptest_config(..)]`), range / tuple /
//! `any::<T>()` / `prop::collection::vec` strategies, `prop_map`, and the
//! `prop_assert*` macros.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generated inputs' debug representation, which is enough to reproduce
//! because generation is deterministic per test name.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Deterministic per-test generator: seeded from the test name so each
/// property gets an independent but reproducible input stream.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::from_seed(h)
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                ((self.start as u128).wrapping_add(v)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_signed!(i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (upstream's `any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Size bounds for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of `element` values with lengths in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min).max(1) as u64;
                let len = self.size.min + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property; panics with the usual assert
/// message on failure (no shrinking in the offline stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines property tests. Each `fn` inside becomes a `#[test]` that runs
/// the body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3u32..9, b in 0u64..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
        }

        #[test]
        fn tuples_and_vecs(pairs in prop::collection::vec((any::<u8>(), 1u16..5), 1..7)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 7);
            for (_x, y) in pairs {
                prop_assert!((1..5).contains(&y));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_is_honoured(v in any::<u64>().prop_map(|x| x % 10)) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0u64..1000;
        for _ in 0..64 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
