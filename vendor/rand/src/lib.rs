//! Offline-compatible subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the handful of `rand` features the simulator actually uses
//! are vendored here as a path dependency. The surface is intentionally
//! small: `Rng::gen`/`gen_range`/`gen_bool`, `SeedableRng::seed_from_u64`,
//! `SmallRng` (xoshiro256++), the `StepRng` mock, and `thread_rng`.
//!
//! Determinism is the property the workspace cares about — every simulation
//! seeds its own `SmallRng` — so this implementation favours simple, stable
//! generation over matching upstream `rand` value streams bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from OS/time entropy. The offline stub derives the
    /// seed from a process-wide counter, which is enough for the few
    /// non-deterministic call sites (none on simulation paths).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED_0BAD_CAFE_F00D);
    COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution in upstream `rand`).
pub trait SampleUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled from a generator.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
        #[allow(unused)]
        const _: $u = 0;
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast xoshiro256++ generator (same algorithm family as
    /// upstream's 64-bit `SmallRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Standard generator; the stub aliases it to [`SmallRng`].
    pub type StdRng = SmallRng;

    /// Per-call generator returned by [`crate::thread_rng`].
    pub type ThreadRng = SmallRng;

    pub mod mock {
        use crate::RngCore;

        /// Mock generator yielding an arithmetic sequence, for tests.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates a generator returning `initial`, `initial + step`, ...
            pub fn new(initial: u64, step: u64) -> StepRng {
                StepRng {
                    value: initial,
                    step,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.step);
                v
            }
        }
    }
}

/// Returns a fresh generator seeded from process-wide entropy. Unlike
/// upstream this is not thread-local state, but no caller in this workspace
/// relies on that.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::from_entropy()
}

/// Samples a value using [`thread_rng`].
pub fn random<T: SampleUniform>() -> T {
    T::sample(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn small_rng_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let s = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(5, 3);
        assert_eq!(rng.gen::<u64>(), 5);
        assert_eq!(rng.gen::<u64>(), 8);
        assert_eq!(rng.gen::<u64>(), 11);
    }
}
